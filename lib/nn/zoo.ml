(* Graph-built workloads (see zoo.mli).

   Registry-scale defaults are sized so every graph fits the
   architectural top level (51) — the BERT encoder at iters=2 consumes
   49 levels on its critical chain, the deepest of the three. *)

(* Degree-d odd-ish "ReLU/GELU-shaped" polynomial coefficients; exact
   values only matter to the functional tests, which mirror them in
   the reference evaluator. *)
let act_coeffs label deg =
  ignore label;
  match deg with
  | 1 -> [| 0.0; 1.0 |]
  | 2 -> [| 0.1; 0.5; 0.4 |]
  | 3 -> [| 0.0; 0.5; 0.25; 0.1 |]
  | _ -> invalid_arg "Zoo: activation degree must be 1..3"

let matvec ?(dim = 10) () =
  let b = Graph.create ~name:(Printf.sprintf "matvec-%d" dim) in
  let x = Graph.input b ~name:"v" ~dim in
  let y = Graph.matmul b ~w:"m" ~rows:dim ~cols:dim x in
  Graph.output b ~name:"out" y;
  Graph.finish b

let mlp3 ?(dim = 64) ?(classes = 10) ?(act_deg = 2) () =
  let b = Graph.create ~name:"mlp3" in
  let coeffs = act_coeffs "relu" act_deg in
  let x = Graph.input b ~name:"x" ~dim in
  let h1 = Graph.act b ~label:"act1" ~coeffs (Graph.matmul b ~w:"w1" ~rows:dim ~cols:dim x) in
  let h2 = Graph.act b ~label:"act2" ~coeffs (Graph.matmul b ~w:"w2" ~rows:dim ~cols:dim h1) in
  let y = Graph.matmul b ~w:"w3" ~rows:classes ~cols:dim h2 in
  Graph.output b ~name:"out" y;
  Graph.finish b

let resnet_block ?(height = 32) ?(width = 32) ?(fold = 8) ?(act_deg = 3) () =
  let b = Graph.create ~name:"resnet-block" in
  let coeffs = act_coeffs "relu" act_deg in
  let x = Graph.input b ~name:"x" ~dim:(height * width) in
  let c1 = Graph.act b ~label:"relu1" ~coeffs (Graph.conv2d b ~w:"c1" ~height ~width ~fold x) in
  let c2 = Graph.conv2d b ~w:"c2" ~height ~width ~fold c1 in
  let res = Graph.add b c2 x in
  let y = Graph.act b ~label:"relu2" ~coeffs res in
  Graph.output b ~name:"out" y;
  Graph.finish b

let bert_encoder ?(d_model = 128) ?(d_ff = 256) ?(exp_deg = 3) ?(gelu_deg = 3) ?(iters = 2) () =
  let b = Graph.create ~name:"bert-encoder" in
  let x = Graph.input b ~name:"x" ~dim:d_model in
  let proj w src = Graph.matmul b ~w ~rows:d_model ~cols:d_model src in
  let q = proj "wq" x and k = proj "wk" x and v = proj "wv" x in
  let scores = Graph.mul b q k in
  let soft =
    Graph.softmax b ~label:"softmax" ~exp_coeffs:(act_coeffs "exp" exp_deg) ~iters scores
  in
  let av = Graph.mul b soft v in
  let o = proj "wo" av in
  let ln1 = Graph.layernorm b ~gamma:"ln1.gamma" ~iters (Graph.add b o x) in
  let h = Graph.matmul b ~w:"ff1" ~rows:d_ff ~cols:d_model ln1 in
  let h = Graph.act b ~label:"gelu" ~coeffs:(act_coeffs "gelu" gelu_deg) h in
  let h2 = Graph.matmul b ~w:"ff2" ~rows:d_model ~cols:d_ff h in
  let ln2 = Graph.layernorm b ~gamma:"ln2.gamma" ~iters (Graph.add b h2 ln1) in
  Graph.output b ~name:"out" ln2;
  Graph.finish b
