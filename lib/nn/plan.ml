(* Packing planner (see plan.mli).

   The per-node counts must mirror Lower's emission exactly — the
   test suite pins plan totals against Ct_ir.count_ops of the lowered
   program, so a drift in either place fails loudly.  Level figures
   follow the actual builder accounting (Mul/Square/MulPlain/MulConst/
   Rescale consume one level each) along the sequential chain. *)

type packing = Diagonal of Cost.split | Column

type step = {
  st_node : Graph.node_id;
  st_desc : string;
  st_packing : packing option;
  st_rotations : int;
  st_ct_muls : int;
  st_pmults : int;
  st_adds : int;
  st_levels : int;
  st_units : float;
}

type t = {
  pl_graph : string;
  pl_steps : step list;
  pl_rotations : int;
  pl_ct_muls : int;
  pl_pmults : int;
  pl_adds : int;
  pl_levels : int;
  pl_units : float;
}

type policy = Cost_optimal | Sqrt_split | Naive_column

let log2 n = Cinnamon_util.Bitops.ceil_log2 n
let cdiv = Cinnamon_util.Bitops.cdiv

let zero node desc =
  {
    st_node = node;
    st_desc = desc;
    st_packing = None;
    st_rotations = 0;
    st_ct_muls = 0;
    st_pmults = 0;
    st_adds = 0;
    st_levels = 0;
    st_units = 0.0;
  }

(* Degree-d power-basis polynomial: x^2 (square) and x^3 (mul) powers,
   one MulConst per coefficient c1..cd, (d-1) adds plus the AddConst. *)
let act_counts d = ((if d >= 2 then 1 else 0) + (if d >= 3 then 1 else 0), d, d, d)

(* Newton-Raphson reciprocal: init MulConst+AddConst, per iteration
   mul, MulConst, AddConst, mul.  1 + 3*iters levels. *)
let nr_inverse_counts it = (2 * it, 1 + it, 1 + it, 1 + (3 * it))

(* Newton-Raphson inverse sqrt: square+mul+MulConst+AddConst+mul per
   iteration.  1 + 4*iters levels. *)
let nr_inv_sqrt_counts it = (3 * it, 1 + it, 1 + it, 1 + (4 * it))

let units_of w st =
  (* matmul steps get their units from the dedicated cost formulas *)
  Float.of_int st.st_ct_muls *. w.Cost.w_keyswitch
  +. (Float.of_int st.st_pmults *. w.Cost.w_pmult)
  +. (Float.of_int st.st_adds *. w.Cost.w_add)
  +. (Float.of_int st.st_levels *. w.Cost.w_level)

let step_of_node w policy (n : Graph.node) =
  let open Graph in
  match n.op with
  | Input { name } -> zero n.id (Printf.sprintf "input %s" name)
  | Output { name; _ } -> zero n.id (Printf.sprintf "output %s" name)
  | Reshape { dim; _ } -> zero n.id (Printf.sprintf "reshape %d" dim)
  | Matmul { w = wname; rows; cols; _ } ->
    let desc = Printf.sprintf "matmul %s [%dx%d]" wname rows cols in
    (* column packing rotate-and-sums over all [cols] slots of a window
       and masks with period [rows]; both must be powers of two for the
       halving sums and the slot replication to be exact *)
    let column_ok =
      Cinnamon_util.Bitops.is_pow2 cols && Cinnamon_util.Bitops.is_pow2 rows
    in
    let packing =
      match policy with
      | Naive_column ->
        if not column_ok then
          invalid_arg
            (Printf.sprintf "Plan: column packing needs power-of-two dims, got %dx%d" rows cols);
        Column
      | Sqrt_split ->
        let n1 = max 1 (int_of_float (Float.round (sqrt (Float.of_int cols)))) in
        Diagonal { Cost.n1; n2 = cdiv cols n1 }
      | Cost_optimal ->
        let split = Cost.best_split w ~diagonals:cols in
        let diag = Cost.bsgs_units w ~diagonals:cols ~n1:split.Cost.n1 in
        let col = Cost.column_units w ~rows ~cols in
        if column_ok && col < diag then Column else Diagonal split
    in
    (match packing with
    | Diagonal ({ n1; n2 } as split) ->
      {
        (zero n.id desc) with
        st_packing = Some (Diagonal split);
        st_rotations = n1 - 1 + (n2 - 1);
        st_pmults = cols;
        st_adds = cols - 1;
        st_levels = 1;
        st_units = Cost.bsgs_units w ~diagonals:cols ~n1;
      }
    | Column ->
      {
        (zero n.id desc) with
        st_packing = Some Column;
        st_rotations = rows * log2 cols;
        st_pmults = 2 * rows;
        st_adds = (rows * log2 cols) + rows - 1;
        st_levels = 2;
        st_units = Cost.column_units w ~rows ~cols;
      })
  | Conv2d { w = wname; height; width; fold; _ } ->
    let rot = 8 + log2 fold in
    let st =
      {
        (zero n.id (Printf.sprintf "conv2d %s [%dx%d fold %d]" wname height width fold)) with
        st_rotations = rot;
        st_pmults = 9;
        st_adds = 8 + log2 fold;
        st_levels = 1;
      }
    in
    (* the 8 tap rotations rotate one input ciphertext: hoistable *)
    { st with st_units = Cost.(hoisted_batch w 8 +. (Float.of_int (log2 fold) *. w.w_rotate)) +. units_of w st }
  | Act { label; coeffs; _ } ->
    let d = Array.length coeffs - 1 in
    let ct, pm, ad, lv = act_counts d in
    let st =
      {
        (zero n.id (Printf.sprintf "act %s deg %d" label d)) with
        st_ct_muls = ct;
        st_pmults = pm;
        st_adds = ad;
        st_levels = lv;
      }
    in
    { st with st_units = units_of w st }
  | Softmax { label; exp_coeffs; iters; _ } ->
    let de = Array.length exp_coeffs - 1 in
    let act_ct, act_pm, act_ad, act_lv = act_counts de in
    let nr_ct, nr_pm, nr_ad, nr_lv = nr_inverse_counts iters in
    let st =
      {
        (zero n.id (Printf.sprintf "softmax %s iters %d" label iters)) with
        st_rotations = log2 n.dim;
        st_ct_muls = act_ct + nr_ct + 1 (* final e * inv *);
        st_pmults = act_pm + nr_pm + 1 (* 1/dim scaling *);
        st_adds = act_ad + nr_ad + log2 n.dim;
        st_levels = act_lv + nr_lv + 2;
      }
    in
    { st with st_units = (Float.of_int (log2 n.dim) *. w.Cost.w_rotate) +. units_of w st }
  | Layernorm { gamma; iters; _ } ->
    let nr_ct, nr_pm, nr_ad, nr_lv = nr_inv_sqrt_counts iters in
    let st =
      {
        (zero n.id (Printf.sprintf "layernorm %s iters %d" gamma iters)) with
        st_rotations = 2 * log2 n.dim;
        st_ct_muls = 1 + nr_ct + 1 (* square(centered) + centered * inv_std *);
        st_pmults = 2 + nr_pm + 1 (* two 1/dim scalings + gamma *);
        st_adds = (2 * log2 n.dim) + 2 + nr_ad (* two sums, sub, eps *);
        st_levels = 4 + nr_lv + 1 (* mean+sub+sq+var, NR, final muls+gamma *);
      }
    in
    { st with st_units = (Float.of_int (2 * log2 n.dim) *. w.Cost.w_rotate) +. units_of w st }
  | Mul _ ->
    let st = { (zero n.id "mul") with st_ct_muls = 1; st_levels = 1 } in
    { st with st_units = units_of w st }
  | Add _ ->
    let st = { (zero n.id "add") with st_adds = 1 } in
    { st with st_units = units_of w st }

let make ?(weights = Cost.default) ?(policy = Cost_optimal) (g : Graph.t) =
  let steps = Array.to_list (Array.map (step_of_node weights policy) g.Graph.nodes) in
  let sum f = List.fold_left (fun a s -> a + f s) 0 steps in
  {
    pl_graph = g.Graph.name;
    pl_steps = steps;
    pl_rotations = sum (fun s -> s.st_rotations);
    pl_ct_muls = sum (fun s -> s.st_ct_muls);
    pl_pmults = sum (fun s -> s.st_pmults);
    pl_adds = sum (fun s -> s.st_adds);
    pl_levels = sum (fun s -> s.st_levels);
    pl_units = List.fold_left (fun a s -> a +. s.st_units) 0.0 steps;
  }

let keyswitches t = t.pl_rotations + t.pl_ct_muls

let packing_of t id =
  match List.find_opt (fun s -> s.st_node = id) t.pl_steps with
  | Some s -> s.st_packing
  | None -> None

let pp_packing fmt = function
  | Diagonal { Cost.n1; n2 } -> Format.fprintf fmt "diagonal %dx%d" n1 n2
  | Column -> Format.fprintf fmt "column"

let pp fmt t =
  Format.fprintf fmt "plan %s: %d rot, %d ct-mul, %d pmult, ~%d levels, %.1f units@." t.pl_graph
    t.pl_rotations t.pl_ct_muls t.pl_pmults t.pl_levels t.pl_units;
  List.iter
    (fun s ->
      if s.st_units > 0.0 || s.st_packing <> None then
        Format.fprintf fmt "  %%%d %-28s %s%3d rot %3d ks %3d pm  %.1f units@." s.st_node s.st_desc
          (match s.st_packing with
          | Some p -> Format.asprintf "[%a] " pp_packing p
          | None -> "")
          s.st_rotations s.st_ct_muls s.st_pmults s.st_units)
    t.pl_steps
