(* Weight bindings, plaintext materialization, and the cleartext
   reference evaluator (see binding.mli).

   The correctness contract: for an r x c matmul over a period-c
   replicated input x~ with extended diagonals

     D_d[s] = W[s mod r, (s + d) mod c]

   the Halevi-Shoup sum  y~[s] = sum_d D_d[s] * x~[(s+d) mod slots]
   equals  y[s mod r]  with  y = W x  — (s+d) mod c walks every column
   exactly once, and c | slots makes the circular rotation respect the
   period.  The BSGS grouping rotates each giant group's sum by g*i
   AFTER the plaintext products, so diagonal d = g*i + j is bound
   pre-rotated by -g*i.  The reference evaluator computes the semantic
   y[s mod r] directly: agreement with the lowered circuit is the
   algebraic identity above, not shared code. *)

module Cplx = Cinnamon_util.Cplx

type t = {
  matrices : (string, float array array) Hashtbl.t;
  vectors : (string, float array) Hashtbl.t;
}

let create () = { matrices = Hashtbl.create 8; vectors = Hashtbl.create 8 }

let set_matrix b name m = Hashtbl.replace b.matrices name m
let set_vector b name v = Hashtbl.replace b.vectors name v

let matrix b name =
  match Hashtbl.find_opt b.matrices name with
  | Some m -> m
  | None -> invalid_arg (Printf.sprintf "Binding: no matrix %S" name)

let vector b name =
  match Hashtbl.find_opt b.vectors name with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Binding: no vector %S" name)

let random ?(seed = 42) ?(amplitude = 1.0) (g : Graph.t) =
  let rng = Cinnamon_util.Rng.create ~seed in
  let u () = (2.0 *. Cinnamon_util.Rng.float rng) -. 1.0 in
  let b = create () in
  Array.iter
    (fun (n : Graph.node) ->
      match n.Graph.op with
      | Graph.Matmul { w; rows; cols; _ } ->
        let a = amplitude /. sqrt (Float.of_int cols) in
        set_matrix b w (Array.init rows (fun _ -> Array.init cols (fun _ -> a *. u ())))
      | Graph.Conv2d { w; height; width; fold; _ } ->
        let a = amplitude /. Float.of_int (9 * fold) in
        for t = 0 to 8 do
          set_vector b
            (Printf.sprintf "%s.w%d" w t)
            (Array.init (height * width) (fun _ -> a *. u ()))
        done
      | Graph.Layernorm { gamma; _ } ->
        set_vector b gamma (Array.init n.Graph.dim (fun _ -> 1.0 +. (0.25 *. u ())))
      | _ -> ())
    g.Graph.nodes;
  b

(* --- plaintext materialization ----------------------------------------- *)

let check_period what d slots =
  if slots mod d <> 0 then
    invalid_arg (Printf.sprintf "Binding.%s: period %d does not divide %d slots" what d slots)

let real_vec v = Array.map (fun x -> Cplx.make x 0.0) v

let plaintexts b (g : Graph.t) plan ~slots =
  let tbl = Hashtbl.create 32 in
  let addv name v = Hashtbl.replace tbl name (real_vec v) in
  Array.iter
    (fun (n : Graph.node) ->
      match n.Graph.op with
      | Graph.Matmul { w; rows; cols; _ } -> (
        check_period "plaintexts" cols slots;
        let m = matrix b w in
        let diag d s = m.(s mod rows).((s + d) mod cols) in
        match Plan.packing_of plan n.Graph.id with
        | Some (Plan.Diagonal { Cost.n1; _ }) ->
          for d = 0 to cols - 1 do
            let giant = n1 * (d / n1) in
            addv
              (Printf.sprintf "%s.diag%d" w d)
              (Array.init slots (fun u -> diag d ((u - giant + slots) mod slots)))
          done
        | Some Plan.Column ->
          for i = 0 to rows - 1 do
            addv (Printf.sprintf "%s.row%d" w i) (Array.init slots (fun u -> m.(i).(u mod cols)));
            addv
              (Printf.sprintf "%s.mask%d" w i)
              (Array.init slots (fun u -> if u mod rows = i then 1.0 else 0.0))
          done
        | None -> invalid_arg "Binding.plaintexts: plan has no packing for a matmul")
      | Graph.Conv2d { w; height; width; _ } ->
        let hw = height * width in
        check_period "plaintexts" hw slots;
        for t = 0 to 8 do
          let tap = vector b (Printf.sprintf "%s.w%d" w t) in
          addv (Printf.sprintf "%s.w%d" w t) (Array.init slots (fun u -> tap.(u mod hw)))
        done
      | Graph.Layernorm { gamma; _ } ->
        check_period "plaintexts" n.Graph.dim slots;
        let gv = vector b gamma in
        addv gamma (Array.init slots (fun u -> gv.(u mod n.Graph.dim)))
      | _ -> ())
    g.Graph.nodes;
  tbl

(* --- cleartext reference evaluation ------------------------------------ *)

let rot v k =
  let n = Array.length v in
  Array.init n (fun s -> v.(((s + k) mod n + n) mod n))

(* sum over the period window: w[s] = sum_{k<d} v[(s+k) mod slots] —
   exactly what the rotate-and-sum tree computes for a power-of-two d *)
let window_sum v d =
  let n = Array.length v in
  Array.init n (fun s ->
      let acc = ref 0.0 in
      for k = 0 to d - 1 do
        acc := !acc +. v.((s + k) mod n)
      done;
      !acc)

let poly_ref coeffs v =
  Array.map
    (fun x ->
      let acc = ref coeffs.(0) and xp = ref 1.0 in
      for i = 1 to Array.length coeffs - 1 do
        xp := !xp *. x;
        acc := !acc +. (coeffs.(i) *. !xp)
      done;
      !acc)
    v

let reference b (g : Graph.t) ~slots ~inputs =
  let values : (Graph.node_id, float array) Hashtbl.t = Hashtbl.create 32 in
  let get id = Hashtbl.find values id in
  let outs = ref [] in
  Array.iter
    (fun (n : Graph.node) ->
      let value =
        match n.Graph.op with
        | Graph.Input { name } ->
          check_period "reference" n.Graph.dim slots;
          let x =
            match List.assoc_opt name inputs with
            | Some x when Array.length x = n.Graph.dim -> x
            | Some _ -> invalid_arg (Printf.sprintf "Binding.reference: input %S wrong length" name)
            | None -> invalid_arg (Printf.sprintf "Binding.reference: missing input %S" name)
          in
          Some (Array.init slots (fun s -> x.(s mod n.Graph.dim)))
        | Graph.Output { src; name } ->
          outs := (name, get src) :: !outs;
          None
        | Graph.Reshape { src; _ } -> Some (get src)
        | Graph.Matmul { src; w; rows; cols } ->
          check_period "reference" cols slots;
          let m = matrix b w and x = get src in
          Some
            (Array.init slots (fun s ->
                 let acc = ref 0.0 in
                 for j = 0 to cols - 1 do
                   acc := !acc +. (m.(s mod rows).(j) *. x.(j))
                 done;
                 !acc))
        | Graph.Conv2d { src; w; height; width; fold } ->
          let hw = height * width in
          check_period "reference" hw slots;
          let x = get src in
          let c = Array.make slots 0.0 in
          List.iteri
            (fun t off ->
              let tap = vector b (Printf.sprintf "%s.w%d" w t) in
              let xr = rot x off in
              for s = 0 to slots - 1 do
                c.(s) <- c.(s) +. (tap.(s mod hw) *. xr.(s))
              done)
            (Lower.conv_offsets width);
          Some (if fold > 1 then window_sum c fold else c)
        | Graph.Act { src; coeffs; _ } -> Some (poly_ref coeffs (get src))
        | Graph.Softmax { src; exp_coeffs; iters; _ } ->
          let e = poly_ref exp_coeffs (get src) in
          let scaled = Array.map (fun s -> s /. Float.of_int n.Graph.dim) (window_sum e n.Graph.dim) in
          let inv =
            Array.map
              (fun v ->
                let x = ref 1.0 in
                for _ = 1 to iters do
                  x := !x *. (2.0 -. (v *. !x))
                done;
                !x)
              scaled
          in
          Some (Array.map2 ( *. ) e inv)
        | Graph.Layernorm { src; gamma; eps; iters } ->
          let d = n.Graph.dim in
          let x = get src in
          let mean = Array.map (fun s -> s /. Float.of_int d) (window_sum x d) in
          let centered = Array.map2 ( -. ) x mean in
          let var =
            Array.map
              (fun s -> (s /. Float.of_int d) +. eps)
              (window_sum (Array.map (fun c -> c *. c) centered) d)
          in
          let inv_std =
            Array.map
              (fun v ->
                let x = ref 1.0 in
                for _ = 1 to iters do
                  x := !x *. (1.5 -. (0.5 *. v *. !x *. !x))
                done;
                !x)
              var
          in
          let gv = vector b gamma in
          Some
            (Array.init slots (fun s -> centered.(s) *. inv_std.(s) *. gv.(s mod d)))
        | Graph.Mul (a, c) -> Some (Array.map2 ( *. ) (get a) (get c))
        | Graph.Add (a, c) -> Some (Array.map2 ( +. ) (get a) (get c))
      in
      Option.iter (Hashtbl.replace values n.Graph.id) value)
    g.Graph.nodes;
  List.rev !outs
