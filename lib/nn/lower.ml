(* Graph -> Ct_ir lowering (see lower.mli for the invariants).

   Each node lowers to the same DSL routine the hand kernels use, so
   the keyswitch pass sees the patterns it already optimizes: diagonal
   matmul babies are input-broadcast batches (hoisted), giant steps
   output-aggregation batches.  The per-node op counts here must stay
   in lockstep with Plan.step_of_node — the test suite pins plan
   totals against Ct_ir.count_ops of the result. *)

module Dsl = Cinnamon.Dsl

let column_matvec v ~rows ~cols ~name =
  (* Naive column packing: per output row, an unhoistable masked
     rotate-and-sum inner product.  y[s] = y_{s mod rows}: row i's
     plaintext is W[i, s mod cols], the mask selects s = i mod rows. *)
  let acc = ref None in
  for i = 0 to rows - 1 do
    let t = Dsl.mul_plain v (Printf.sprintf "%s.row%d" name i) in
    let s = Dsl.sum_slots t ~n:cols in
    let m = Dsl.mul_plain s (Printf.sprintf "%s.mask%d" name i) in
    acc := Some (match !acc with None -> m | Some x -> Dsl.add x m)
  done;
  Option.get !acc

(* Power-basis polynomial c0 + c1 x + ... + cd x^d, degree <= 3.
   Unlike Dsl.poly_eval (the structural Paterson-Stockmeyer shape used
   for cycle costs), this evaluates the named coefficients exactly, so
   lowered programs decrypt-match the reference evaluator. *)
let poly v coeffs =
  let d = Array.length coeffs - 1 in
  let x2 = if d >= 2 then Some (Dsl.square v) else None in
  let x3 = if d >= 3 then Some (Dsl.mul (Option.get x2) v) else None in
  let power = function 1 -> v | 2 -> Option.get x2 | 3 -> Option.get x3 | _ -> assert false in
  let acc = ref (Dsl.mul_const v coeffs.(1)) in
  for i = 2 to d do
    acc := Dsl.add !acc (Dsl.mul_const (power i) coeffs.(i))
  done;
  Dsl.add_const !acc coeffs.(0)

let lower_softmax v ~dim ~exp_coeffs ~iters =
  let e = poly v exp_coeffs in
  let den = Dsl.sum_slots e ~n:dim in
  (* scale to the mean so the NR reciprocal starts in its basin *)
  let scaled = Dsl.mul_const den (1.0 /. Float.of_int dim) in
  let inv = Dsl.nr_inverse scaled ~iters in
  Dsl.mul e inv

let lower_layernorm v ~dim ~gamma ~eps ~iters =
  let inv_d = 1.0 /. Float.of_int dim in
  let mean = Dsl.mul_const (Dsl.sum_slots v ~n:dim) inv_d in
  let centered = Dsl.sub v mean in
  let var = Dsl.mul_const (Dsl.sum_slots (Dsl.square centered) ~n:dim) inv_d in
  let inv_std = Dsl.nr_inv_sqrt (Dsl.add_const var eps) ~iters in
  Dsl.mul_plain (Dsl.mul centered inv_std) gamma

let conv_offsets width = List.init 9 (fun t -> (t mod 3) - 1 + (width * (t / 3 - 1)))

let lower_conv v ~w ~width ~fold =
  (* 3x3 taps as rotations of one input (a hoistable batch), lazily
     rescaled like the diagonal matvec, then the channel fold. *)
  let taps =
    List.mapi
      (fun t off -> Dsl.mul_plain_raw (Dsl.rotate v off) (Printf.sprintf "%s.w%d" w t))
      (conv_offsets width)
  in
  let s = List.fold_left Dsl.add (List.hd taps) (List.tl taps) in
  let s = Dsl.rescale s in
  if fold > 1 then Dsl.sum_slots s ~n:fold else s

let sources (n : Graph.node) =
  match n.Graph.op with
  | Graph.Input _ -> []
  | Graph.Output { src; _ }
  | Graph.Reshape { src; _ }
  | Graph.Matmul { src; _ }
  | Graph.Conv2d { src; _ }
  | Graph.Act { src; _ }
  | Graph.Softmax { src; _ }
  | Graph.Layernorm { src; _ } -> [ src ]
  | Graph.Mul (a, b) | Graph.Add (a, b) -> [ a; b ]

let lower ?(top_level = 51) ?(boot_level = 21) ?(refresh_depth = 12) ?plan (g : Graph.t) =
  let plan = match plan with Some p -> p | None -> Plan.make g in
  let step id = List.find (fun (s : Plan.step) -> s.Plan.st_node = id) plan.Plan.pl_steps in
  Dsl.program ~top_level ~boot_level (fun p ->
      let env : (Graph.node_id, Dsl.ct) Hashtbl.t = Hashtbl.create 32 in
      let get id = Hashtbl.find env id in
      (* Automatic bootstrap placement: values carry their ct-ct
         multiplicative depth since the last refresh; before a node
         that would push an operand past [refresh_depth] (where the
         conservative noise estimate starts compounding; see
         Cinnamon_compiler.Noise) — or past the level budget — its
         operands are bootstrapped, exactly as the paper's hand
         kernels interleave bootstraps through BERT and ResNet. *)
      let depths : (Graph.node_id, int) Hashtbl.t = Hashtbl.create 32 in
      let depth id = Option.value (Hashtbl.find_opt depths id) ~default:0 in
      let refresh_operands (n : Graph.node) =
        let s = step n.Graph.id in
        let inc = s.Plan.st_ct_muls and need = s.Plan.st_levels in
        let base = List.fold_left (fun a src -> max a (depth src)) 0 (sources n) in
        let too_deep = base > 0 && base + inc > refresh_depth in
        List.iter
          (fun src ->
            let v = get src in
            let low_budget = Dsl.budget v < need + 1 && Dsl.budget v < boot_level in
            if (too_deep && depth src > 0) || low_budget then begin
              Hashtbl.replace env src (Dsl.bootstrap v);
              Hashtbl.replace depths src 0
            end)
          (sources n);
        let base = List.fold_left (fun a src -> max a (depth src)) 0 (sources n) in
        Hashtbl.replace depths n.Graph.id (base + inc)
      in
      Array.iter
        (fun (n : Graph.node) ->
          refresh_operands n;
          let value =
            match n.Graph.op with
            | Graph.Input { name } -> Some (Dsl.input p name)
            | Graph.Output { src; name } ->
              Dsl.output (get src) name;
              None
            | Graph.Reshape { src; _ } -> Some (get src)
            | Graph.Matmul { src; w; rows; cols } -> (
              match Plan.packing_of plan n.Graph.id with
              | Some (Plan.Diagonal { Cost.n1; _ }) ->
                Some (Dsl.bsgs_matvec ~g:n1 (get src) ~diagonals:cols ~name:w)
              | Some Plan.Column -> Some (column_matvec (get src) ~rows ~cols ~name:w)
              | None -> invalid_arg "Lower: plan has no packing for a matmul node")
            | Graph.Conv2d { src; w; width; fold; _ } ->
              Some (lower_conv (get src) ~w ~width ~fold)
            | Graph.Act { src; coeffs; _ } -> Some (poly (get src) coeffs)
            | Graph.Softmax { src; exp_coeffs; iters; _ } ->
              Some (lower_softmax (get src) ~dim:n.Graph.dim ~exp_coeffs ~iters)
            | Graph.Layernorm { src; gamma; eps; iters } ->
              Some (lower_layernorm (get src) ~dim:n.Graph.dim ~gamma ~eps ~iters)
            | Graph.Mul (a, b) -> Some (Dsl.mul (get a) (get b))
            | Graph.Add (a, b) -> Some (Dsl.add (get a) (get b))
          in
          Option.iter (Hashtbl.replace env n.Graph.id) value)
        g.Graph.nodes)
