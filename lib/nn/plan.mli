(** Packing plans: the typed, inspectable artifact between the cost
    model and the lowering.

    [make] walks a {!Graph.t} and decides, per matmul, the packing
    (diagonal vs. naive column) and the BSGS split (n1 babies x n2
    giants), recording for every node the operation counts the lowering
    will emit — the counts are exact (pinned by test against
    [Ct_ir.count_ops] of the lowered program), the level figure is the
    sequential-chain estimate used for cost pressure. *)

type packing = Diagonal of Cost.split | Column

type step = {
  st_node : Graph.node_id;
  st_desc : string;
  st_packing : packing option;  (** [Some] on matmul nodes *)
  st_rotations : int;
  st_ct_muls : int;  (** ct-ct products (relinearization keyswitches) *)
  st_pmults : int;  (** plaintext/constant products *)
  st_adds : int;
  st_levels : int;
  st_units : float;  (** keyswitch-equivalent cost *)
}

type t = {
  pl_graph : string;
  pl_steps : step list;
  pl_rotations : int;
  pl_ct_muls : int;
  pl_pmults : int;
  pl_adds : int;
  pl_levels : int;
  pl_units : float;
}

type policy =
  | Cost_optimal  (** per-shape argmin of the cost model (the default) *)
  | Sqrt_split
      (** diagonal packing with the legacy n1 = round(sqrt D) split —
          what the hand-written kernels use; keeps [matvec-<n>]
          bit-identical *)
  | Naive_column  (** force column packing everywhere (the baseline) *)

val make : ?weights:Cost.weights -> ?policy:policy -> Graph.t -> t

(** Total keyswitches = rotations + ct-ct products. *)
val keyswitches : t -> int

val packing_of : t -> Graph.node_id -> packing option
val pp : Format.formatter -> t -> unit
