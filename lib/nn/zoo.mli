(** Graph-built workloads.  Defaults are the registry scale (compiled
    symbolically at the architectural top level); tests instantiate the
    same constructors at functional scale (small dims, shallow
    iterations) to run them under CKKS decryption. *)

(** Power-basis activation coefficients of the given degree (1..3) —
    the smooth stand-ins for ReLU/GELU the workloads use. *)
val act_coeffs : string -> int -> float array

(** A single [dim x dim] matmul — the graph behind the [matvec-<n>]
    kernel family (input ["v"], weight ["m"], output ["out"]). *)
val matvec : ?dim:int -> unit -> Graph.t

(** Three dense layers with pointwise polynomial activations; the last
    layer maps to [classes]. *)
val mlp3 : ?dim:int -> ?classes:int -> ?act_deg:int -> unit -> Graph.t

(** A ResNet basic block: conv-act-conv, residual add, final act, over
    a [height x width] plane with a [fold]-channel rotate-and-sum. *)
val resnet_block : ?height:int -> ?width:int -> ?fold:int -> ?act_deg:int -> unit -> Graph.t

(** One BERT encoder layer: Q/K/V projections, scores, softmax,
    attention-value product, output projection, residual + layernorm,
    feed-forward (d_ff) with GELU, residual + layernorm. *)
val bert_encoder :
  ?d_model:int -> ?d_ff:int -> ?exp_deg:int -> ?gelu_deg:int -> ?iters:int -> unit -> Graph.t
