(** Weight bindings: the numeric side of a graph.

    A binding maps every weight name a graph references to real data —
    matrices for matmuls, tap vectors for convolutions, gamma vectors
    for layernorms.  From one binding both executions are derived:

    - {!plaintexts} materializes the slot-vector plaintext operands the
      lowered program multiplies by (extended diagonals pre-rotated by
      the giant step, column rows and masks, replicated taps/gammas),
      keyed by the exact names {!Lower} emits;
    - {!reference} evaluates the graph in the clear over replicated
      slot vectors, mirroring the lowered circuit's arithmetic (same
      polynomial activations, same Newton-Raphson iterations, circular
      rotate-and-sum) — so decrypting the lowered program must agree
      with it up to CKKS noise. *)

type t

val create : unit -> t
val set_matrix : t -> string -> float array array -> unit
val set_vector : t -> string -> float array -> unit

(** Deterministically fill every weight the graph needs: matmul entries
    uniform in [±amplitude/sqrt cols], conv taps in
    [±amplitude/(9 fold)], gammas near 1. *)
val random : ?seed:int -> ?amplitude:float -> Graph.t -> t

(** Slot-vector plaintext operands for a lowered program, under the
    packing decisions of [plan].  Raises [Invalid_argument] if a
    dimension does not divide [slots] or a weight is missing. *)
val plaintexts :
  t -> Graph.t -> Plan.t -> slots:int -> (string, Cinnamon_util.Cplx.t array) Hashtbl.t

(** Cleartext evaluation over full slot vectors; inputs are logical
    vectors of each input node's dimension, outputs are slot vectors
    (compare directly against [Encrypt.decrypt_real]). *)
val reference :
  t -> Graph.t -> slots:int -> inputs:(string * float array) list -> (string * float array) list
