(** Lowering: compile a planned {!Graph.t} to a {!Cinnamon_ir.Ct_ir}
    program through the DSL.

    Invariants (see DESIGN.md "Graph front-end"):
    - deterministic: the emitted program is a pure function of
      (graph, plan) — no randomness, no environment;
    - plan-faithful: the operation counts recorded in the plan match
      [Ct_ir.count_ops] of the emitted program exactly (pinned by
      test);
    - matvec-compatible: diagonal matmuls go through
      [Dsl.bsgs_matvec ?g], so baby rotations form the input-broadcast
      batches the keyswitch pass hoists ([Hoisting.rotate_many]) and a
      [Sqrt_split] plan reproduces the hand [matvec-<n>] kernels
      byte-identically;
    - plaintext naming: diagonal matmuls bind [w.diagI], column
      matmuls [w.rowI]/[w.maskI], convolutions [w.wT], layernorms
      their gamma name — {!Binding.plaintexts} materializes exactly
      these.

    Bootstraps are placed automatically: when a node would push an
    operand's ciphertext-product depth past [refresh_depth] (default
    12 — where the conservative noise estimate starts compounding;
    see {!Cinnamon_compiler.Noise}) or past the remaining level
    budget, the operand is refreshed first, mirroring how the paper's
    programs interleave bootstraps.  [boot_level] (default 21, the
    Bootstrap-21 shape) is the budget a refresh restores; pass
    [refresh_depth = max_int] for bootstrap-free programs (the
    functional tests, which emulate at kernel granularity). *)

val lower :
  ?top_level:int ->
  ?boot_level:int ->
  ?refresh_depth:int ->
  ?plan:Plan.t ->
  Graph.t ->
  Cinnamon_ir.Ct_ir.t

(** Rotation offsets of the nine 3x3 conv taps over a row-major plane
    of the given width (tap 4, the center, is offset 0). *)
val conv_offsets : int -> int list
