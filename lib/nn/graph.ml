(* Typed dataflow graph IR (see graph.mli for the packing discipline).

   Shape inference happens in the builder: every constructor checks its
   operands' replication periods, so a finished graph is
   well-dimensioned by construction.  Nodes are stored in emission
   order, which is a topological order (constructors can only reference
   existing ids) — the lowering and the reference evaluator both walk
   the array front to back. *)

type node_id = int

type op =
  | Input of { name : string }
  | Matmul of { src : node_id; w : string; rows : int; cols : int }
  | Conv2d of { src : node_id; w : string; height : int; width : int; fold : int }
  | Act of { src : node_id; label : string; coeffs : float array }
  | Layernorm of { src : node_id; gamma : string; eps : float; iters : int }
  | Softmax of { src : node_id; label : string; exp_coeffs : float array; iters : int }
  | Mul of node_id * node_id
  | Add of node_id * node_id
  | Reshape of { src : node_id; dim : int }
  | Output of { src : node_id; name : string }

type node = { id : node_id; op : op; dim : int }
type t = { name : string; nodes : node array }

type builder = { gname : string; mutable rev : node list; mutable next : node_id }

let create ~name = { gname = name; rev = []; next = 0 }

let push b op dim =
  let id = b.next in
  b.next <- id + 1;
  b.rev <- { id; op; dim } :: b.rev;
  id

let dim_of b id =
  match List.find_opt (fun n -> n.id = id) b.rev with
  | Some n -> n.dim
  | None -> invalid_arg "Graph: unknown node id"

let is_pow2 = Cinnamon_util.Bitops.is_pow2

let check_dim what d =
  if d < 1 then invalid_arg (Printf.sprintf "Graph.%s: dimension must be >= 1" what)

let input b ~name ~dim =
  check_dim "input" dim;
  push b (Input { name }) dim

let matmul b ~w ~rows ~cols src =
  check_dim "matmul" rows;
  check_dim "matmul" cols;
  if dim_of b src <> cols then
    invalid_arg
      (Printf.sprintf "Graph.matmul %s: input period %d, want cols = %d" w (dim_of b src) cols);
  push b (Matmul { src; w; rows; cols }) rows

let conv2d b ~w ~height ~width ?(fold = 1) src =
  let hw = height * width in
  check_dim "conv2d" hw;
  if fold < 1 || not (is_pow2 fold) then
    invalid_arg "Graph.conv2d: fold must be a power of two >= 1";
  if dim_of b src <> hw then
    invalid_arg
      (Printf.sprintf "Graph.conv2d %s: input period %d, want %dx%d = %d" w (dim_of b src) height
         width hw);
  push b (Conv2d { src; w; height; width; fold }) hw

let act b ~label ~coeffs src =
  let deg = Array.length coeffs - 1 in
  if deg < 1 || deg > 3 then invalid_arg "Graph.act: degree must be 1..3 (power basis)";
  push b (Act { src; label; coeffs }) (dim_of b src)

let layernorm b ~gamma ?(eps = 0.5) ?(iters = 2) src =
  let d = dim_of b src in
  if not (is_pow2 d) then invalid_arg "Graph.layernorm: period must be a power of two";
  if iters < 1 then invalid_arg "Graph.layernorm: iters must be >= 1";
  push b (Layernorm { src; gamma; eps; iters }) d

(* Default exp approximation: 1 + x + x^2/2 around 0 — the functional
   regime keeps scores small, and the reference evaluator mirrors the
   same polynomial, so the choice only affects value ranges. *)
let default_exp = [| 1.0; 1.0; 0.5 |]

let softmax b ~label ?(exp_coeffs = default_exp) ?(iters = 2) src =
  let d = dim_of b src in
  if not (is_pow2 d) then invalid_arg "Graph.softmax: period must be a power of two";
  let deg = Array.length exp_coeffs - 1 in
  if deg < 1 || deg > 3 then invalid_arg "Graph.softmax: exp degree must be 1..3";
  if iters < 1 then invalid_arg "Graph.softmax: iters must be >= 1";
  push b (Softmax { src; label; exp_coeffs; iters }) d

let binop b what mk a c =
  let da = dim_of b a and dc = dim_of b c in
  if da <> dc then
    invalid_arg (Printf.sprintf "Graph.%s: period mismatch (%d vs %d)" what da dc);
  push b (mk a c) da

let mul b a c = binop b "mul" (fun a c -> Mul (a, c)) a c
let add b a c = binop b "add" (fun a c -> Add (a, c)) a c

let reshape b ~dim src =
  let d = dim_of b src in
  if dim mod d <> 0 then
    invalid_arg (Printf.sprintf "Graph.reshape: %d does not widen period %d" dim d);
  push b (Reshape { src; dim }) dim

let output b ~name src = ignore (push b (Output { src; name }) (dim_of b src))

let finish b =
  let nodes = Array.of_list (List.rev b.rev) in
  let ins = ref [] and outs = ref [] and weights = ref [] in
  let seen what lst n =
    if List.mem n !lst then invalid_arg (Printf.sprintf "Graph: duplicate %s name %S" what n);
    lst := n :: !lst
  in
  Array.iter
    (fun n ->
      match n.op with
      | Input { name } -> seen "input" ins name
      | Output { name; _ } -> seen "output" outs name
      | Matmul { w; _ } | Conv2d { w; _ } -> seen "weight" weights w
      | Layernorm { gamma; _ } -> seen "weight" weights gamma
      | _ -> ())
    nodes;
  if !ins = [] then invalid_arg "Graph.finish: no inputs";
  if !outs = [] then invalid_arg "Graph.finish: no outputs";
  { name = b.gname; nodes }

let node g id =
  if id < 0 || id >= Array.length g.nodes then invalid_arg "Graph.node: bad id";
  g.nodes.(id)

let dim g id = (node g id).dim

let inputs g =
  Array.to_list g.nodes
  |> List.filter_map (fun n -> match n.op with Input { name } -> Some (name, n.dim) | _ -> None)

let outputs g =
  Array.to_list g.nodes
  |> List.filter_map (fun n ->
         match n.op with Output { src; name } -> Some (name, src) | _ -> None)

let pp_op fmt = function
  | Input { name } -> Format.fprintf fmt "input %S" name
  | Matmul { src; w; rows; cols } -> Format.fprintf fmt "matmul %s [%dx%d] %%%d" w rows cols src
  | Conv2d { src; w; height; width; fold } ->
    Format.fprintf fmt "conv2d %s [%dx%d fold %d] %%%d" w height width fold src
  | Act { src; label; coeffs } ->
    Format.fprintf fmt "act %s deg %d %%%d" label (Array.length coeffs - 1) src
  | Layernorm { src; gamma; iters; _ } ->
    Format.fprintf fmt "layernorm %s iters %d %%%d" gamma iters src
  | Softmax { src; label; iters; _ } -> Format.fprintf fmt "softmax %s iters %d %%%d" label iters src
  | Mul (a, b) -> Format.fprintf fmt "mul %%%d %%%d" a b
  | Add (a, b) -> Format.fprintf fmt "add %%%d %%%d" a b
  | Reshape { src; dim } -> Format.fprintf fmt "reshape %d %%%d" dim src
  | Output { src; name } -> Format.fprintf fmt "output %S %%%d" name src

let pp fmt g =
  Format.fprintf fmt "graph %s (%d nodes)@." g.name (Array.length g.nodes);
  Array.iter (fun n -> Format.fprintf fmt "  %%%d : %d = %a@." n.id n.dim pp_op n.op) g.nodes
