(** Load generation against the virtual-time server.

    The generator {e self-calibrates}: each workload class in the mix
    is run once up front (through the result cache, pre-warming the
    compiles the serving run will hit) and its measured simulated
    seconds become the base service time used for arrival-rate and
    deadline scaling — so presets keep provoking the intended
    queueing/shedding behaviour as the simulator's timing model
    evolves. *)

module CC = Cinnamon_compiler.Compile_config

type class_spec = {
  cls_bench : string;  (** benchmark registry name *)
  cls_system : string;  (** system registry name *)
  cls_weight : float;  (** > 0; mix is weight-proportional *)
}

type mode =
  | Open_loop of { overload : float }
      (** Poisson arrivals at [overload] x the server's aggregate
          service capacity ([workers / mean service time]) — [> 1]
          provokes queueing and shedding *)
  | Closed_loop of { clients : int; think_factor : float }
      (** each client issues its next request one think time
          ([think_factor] x mean service) after its previous request
          reaches a terminal state *)

type config = {
  lg_mode : mode;
  lg_requests : int;  (** total requests to issue *)
  lg_mix : class_spec list;
  lg_seed : int;  (** all randomness (arrivals, mix, priorities) *)
  lg_deadline_factor : float;
      (** deadline = arrival + factor x class base service time *)
  lg_capacity : Node.capacity;
  lg_compile : CC.t;
  lg_jobs : int;  (** real pool workers; 0 = recommended count *)
}

(** 80 bootstrap\@cinnamon-4 requests, open loop at 4x overload against
    2 workers / capacity 12 / max batch 4 — finishes in seconds, still
    exercises queueing, batching and shedding. *)
val quick : config

(** 300 requests, 70/30 bootstrap/resnet mix, otherwise {!quick}. *)
val default : config

type result = {
  lr_mode : string;  (** "open_loop" or "closed_loop" *)
  lr_rate_rps : float;  (** offered (open) or nominal (closed) rate *)
  lr_base_service : (string * float) list;
      (** ["bench\@system"] → calibrated service seconds *)
  lr_report : Slo.report;
}

(** The production [Node.execute]: resolve the head request's workload
    and charge the batch one real compile + simulation (all requests
    in a batch share the batcher's compatibility key, so one run
    amortizes over the whole batch).  The fleet layer builds its nodes
    from this. *)
val workload_executor : now_s:float -> Batcher.batch -> float

(** Run each class once (through the result cache, pre-warming the
    compiles a serving run will hit) and pair it with its measured
    base service seconds.  Raises typed errors on unknown workload
    names. *)
val calibrate :
  pool:Cinnamon_exec.Pool.t -> compile:CC.t -> class_spec list -> (class_spec * float) list

(** Generate the arrival stream, play it through {!Server.run} against
    a node built from {!workload_executor}, and report.  Raises
    [Invalid_argument] on an empty mix, non-positive weights, counts
    or factors, and on workload names missing from the registries. *)
val run : config -> result

val result_json : result -> Cinnamon_util.Json.t
val print_result : result -> unit

(** Merge this result into [file] (the [BENCH_cinnamon.json] perf
    artifact) under ["serve_loadtest"][mode], preserving all other
    keys and inserting the schema tag when creating the file fresh. *)
val write_section : file:string -> result -> unit
