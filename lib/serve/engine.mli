(** The per-node serving core, exposed as incremental steps on a
    caller-owned virtual clock.

    One engine owns one node's admission queue, batch formation,
    executor retries, simulated-worker occupancy, and SLO accumulator.
    {!Server.run} drives a single engine to completion; the fleet
    driver steps N of them from one loop, fanning every node's batches
    across one shared pool at each virtual instant ({!execute} is
    pool-safe).  Terminal responses stream through the [respond]
    callback — the engine retains none of them. *)

(** Trace pid used for serving-layer telemetry rows. *)
val serve_pid : int

type t

(** [Ok (service_s, attempts)] or [Error (attempts, reason)]. *)
type exec_outcome = (float * int, int * string) result

(** Validates [node.capacity]; [respond] fires exactly once per
    terminal response, after this node's SLO accumulator has absorbed
    it. *)
val create : node:Node.t -> respond:(Response.t -> unit) -> t

val node : t -> Node.t
val name : t -> string
val slo : t -> Slo.t
val queue_depth : t -> int
val free_workers : t -> int

(** Requests in flight inside dispatched batches. *)
val inflight_requests : t -> int

(** Router's least-loaded signal: queued + in-flight requests. *)
val load : t -> int

(** Admission open and the queue below capacity. *)
val has_room : t -> bool

val is_closed : t -> bool

(** Stop admitting (graceful drain); queued/in-flight work still runs
    to terminal states. *)
val close : t -> unit

(** Queue empty and nothing in flight. *)
val is_drained : t -> bool

(** {1 Per-step operations, in loop order} *)

(** Apply the node's own [drain_after_s] deadline. *)
val maybe_close : t -> now_s:float -> unit

(** Count the request as offered, then admit or emit a typed
    [Rejected] response. *)
val offer : t -> now_s:float -> Request.t -> unit

(** Shed queued requests whose deadlines passed, emitting [Shed]
    responses. *)
val shed_expired : t -> now_s:float -> unit

(** Sample the queue-depth gauge. *)
val observe_depth : t -> unit

(** A free simulated worker and a non-empty queue (e.g. after a failed
    dispatch freed one mid-instant). *)
val wants_dispatch : t -> bool

(** Form as many batches as there are free simulated workers, claiming
    a worker and an id (from the shared counter) per batch.  Every
    batch MUST then be passed through {!execute} and {!commit}
    exactly once. *)
val form_batches : t -> now_s:float -> next_batch_id:int ref -> Batcher.batch list

(** Run the node's executor on one batch with in-place [Transient]
    retries.  Touches no engine state — safe on a pool worker,
    including batches from many engines in one [Pool.map]. *)
val execute : t -> now_s:float -> Batcher.batch -> exec_outcome

(** Book the outcome: [Ok] occupies the claimed worker until
    [now_s + service + extra_service_s] ([extra_service_s] models e.g.
    a key-cache miss HBM load); [Error] frees the worker and fails the
    batch's requests.  Sequential — call in deterministic batch
    order. *)
val commit : t -> now_s:float -> ?extra_service_s:float -> Batcher.batch -> exec_outcome -> unit

(** Virtual finish time of the earliest in-flight batch; [infinity] if
    idle. *)
val next_completion_s : t -> float

(** Emit [Completed] responses for every batch finishing at or before
    [now_s], freeing their workers. *)
val complete_due : t -> now_s:float -> unit
