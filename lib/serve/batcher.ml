(* Dynamic batcher: group compatible queued requests so one compile —
   served from the Result_cache when warm — and one simulated execution
   amortize over the whole batch.

   Compatibility means "could be packed into the same CKKS ciphertext
   batch and served by the same compiled program": same benchmark, same
   system, and a structurally identical compile configuration.  The
   configuration part of the key digests Exec.Cache_key.config_sig —
   the SAME structural rendering (every behavioural field, no cosmetic
   ones) the Result_cache keys compile+simulate results on — so the
   batcher and the cache can never disagree about which requests share
   a compiled program.  (It used to digest Marshal output, which is
   sensitive to sharing/representation rather than structure.) *)

(* Batch size is capped by the caller's [max_batch] AND by the ring's
   slot count (2^(log_n - 1)) — the CKKS slot-packing limit: one
   ciphertext holds at most that many packed inferences. *)

type batch = {
  batch_id : int;
  batch_key : string;
  requests : Request.t list; (* dispatch order; non-empty *)
  formed_s : float; (* virtual formation time *)
}

let size b = List.length b.requests

let config_digest (c : Cinnamon_compiler.Compile_config.t) =
  Digest.to_hex (Digest.string (Cinnamon_exec.Cache_key.config_sig c))

(* Tenant and epoch lead the key: requests of different tenants — or of
   one tenant across a key rotation — run under different key material,
   so they can never share a packed ciphertext or a dispatch. *)
let compat_key (r : Request.t) =
  Printf.sprintf "%s|%s|%s|%s|%s"
    (Cinnamon_tenant.Tenant_id.to_string r.Request.req_tenant)
    (Cinnamon_tenant.Epoch.to_string r.Request.req_epoch)
    r.Request.req_bench r.Request.req_system
    (config_digest r.Request.req_config)

let form q ~now_s ~max_batch ~batch_id =
  if max_batch < 1 then invalid_arg "Batcher.form: max_batch must be >= 1";
  match Admission.peek q with
  | None -> None
  | Some head ->
    let key = compat_key head in
    let limit = min max_batch (Request.slots head) in
    let requests = Admission.take q (fun r -> String.equal (compat_key r) key) ~limit in
    Some { batch_id; batch_key = key; requests; formed_s = now_s }
