(** Bounded admission queue with backpressure and typed rejection,
    kept in dispatch order (priority class, then FIFO within a
    class).  Every failure to serve is a value: admission returns
    [error], and {!shed_expired} hands back the requests it removed. *)

type error =
  | Queue_full of { capacity : int }  (** backpressure: queue at capacity *)
  | Expired of { deadline_s : float; now_s : float }
      (** the deadline had already passed on arrival *)
  | Closed  (** the server is draining; no new admissions *)
  | Fleet_full of { nodes : int }
      (** global backpressure: a fleet router found every node at
          capacity (never produced by a single queue's {!admit}) *)
  | Tenant_unavailable of { tenant : Cinnamon_tenant.Tenant_id.t; reason : string }
      (** the tenant key store refused to lease keys for this request
          (retired tenant, destroyed epoch); produced by the fleet's
          tenancy layer, never by a single queue's {!admit} *)

val error_to_string : error -> string

type t

(** Raises [Invalid_argument] if [capacity < 1]. *)
val create : capacity:int -> t

val capacity : t -> int
val depth : t -> int
val is_empty : t -> bool

(** Stop admitting (graceful drain); queued requests stay queued. *)
val close : t -> unit

val is_closed : t -> bool

val admit : t -> now_s:float -> Request.t -> (unit, error) result

(** Remove and return every queued request whose deadline lies strictly
    before [now_s]. *)
val shed_expired : t -> now_s:float -> Request.t list

(** Highest-priority, oldest queued request. *)
val peek : t -> Request.t option

(** [take t pred ~limit] removes and returns (in queue order) up to
    [limit] requests satisfying [pred]. *)
val take : t -> (Request.t -> bool) -> limit:int -> Request.t list
