(** An encrypted-inference request: workload + system registry names,
    compile configuration, arrival time, priority, and absolute
    deadline, all on the serving layer's virtual clock (seconds). *)

type priority = High | Normal | Low

(** [High] ranks before [Normal] before [Low]. *)
val priority_rank : priority -> int

val priority_name : priority -> string

type t = {
  req_id : int;
  req_bench : string;  (** benchmark registry name (see [Specs.benchmarks]) *)
  req_system : string;  (** system registry name (see [Runner.systems]) *)
  req_config : Cinnamon_compiler.Compile_config.t;
  req_priority : priority;
  req_arrival_s : float;
  req_deadline_s : float;  (** absolute; [infinity] = no deadline *)
  req_tenant : Cinnamon_tenant.Tenant_id.t;
      (** whose key material serves this request *)
  req_epoch : Cinnamon_tenant.Epoch.t;
      (** key epoch bound at admission (the fleet stamps it from its
          tenant key store; single-tenant runs stay at [Epoch.zero]) *)
}

(** [config] defaults to [Compile_config.paper ()], [priority] to
    [Normal], [deadline_s] to [infinity], [tenant] to
    [Tenant_id.default] and [epoch] to [Epoch.zero] (the single-tenant
    legacy identity).  Raises [Invalid_argument] on a negative or nan
    arrival time. *)
val make :
  ?config:Cinnamon_compiler.Compile_config.t ->
  ?priority:priority ->
  ?deadline_s:float ->
  ?tenant:Cinnamon_tenant.Tenant_id.t ->
  ?epoch:Cinnamon_tenant.Epoch.t ->
  id:int ->
  bench:string ->
  system:string ->
  arrival_s:float ->
  unit ->
  t

(** Admission-time epoch binding; in-flight work is never rebound. *)
val with_epoch : t -> Cinnamon_tenant.Epoch.t -> t

(** CKKS slot count of the request's ring ([2^(log_n - 1)]): the hard
    cap on batch size for slot packing. *)
val slots : t -> int

(** The deadline lies strictly before [now_s]. *)
val expired : t -> now_s:float -> bool

(** Dispatch order: priority class, then arrival, then id. *)
val compare_order : t -> t -> int
