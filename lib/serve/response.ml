(* The terminal outcome of a request.  Every request offered to the
   server gets exactly one response; rejection and shedding are
   first-class outcomes, never silent drops. *)

type outcome =
  | Completed of {
      started_s : float; (* batch dispatch time *)
      finished_s : float;
      attempts : int; (* 1 = no retries *)
      batch_id : int;
      batch_size : int;
    }
  | Rejected of Admission.error (* refused at admission *)
  | Shed of { deadline_s : float; shed_s : float } (* expired while queued *)
  | Failed of { attempts : int; failed_s : float; reason : string }

type t = { req : Request.t; outcome : outcome }

let outcome_name = function
  | Completed _ -> "completed"
  | Rejected _ -> "rejected"
  | Shed _ -> "shed"
  | Failed _ -> "failed"

let latency_s t =
  match t.outcome with
  | Completed c -> Some (c.finished_s -. t.req.Request.req_arrival_s)
  | Rejected _ | Shed _ | Failed _ -> None

let met_deadline t =
  match t.outcome with
  | Completed c -> c.finished_s <= t.req.Request.req_deadline_s
  | Rejected _ | Shed _ | Failed _ -> false

(* The virtual time at which the outcome became known — what a
   closed-loop client keys its next request off. *)
let terminal_s t =
  match t.outcome with
  | Completed c -> c.finished_s
  | Shed s -> s.shed_s
  | Failed f -> f.failed_s
  | Rejected _ -> t.req.Request.req_arrival_s
