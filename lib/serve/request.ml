(* An encrypted-inference request: which workload to run on which
   system, when it arrived, how urgent it is, and by when it must
   finish.  Workload and system are registry NAMES (resolved by the
   executor through Specs/Runner), so a request is a plain value the
   admission queue and batcher can order and group without touching the
   compiler.  All times are virtual seconds on the serving clock. *)

module CC = Cinnamon_compiler.Compile_config
module Tenant_id = Cinnamon_tenant.Tenant_id
module Epoch = Cinnamon_tenant.Epoch

type priority = High | Normal | Low

let priority_rank = function High -> 0 | Normal -> 1 | Low -> 2
let priority_name = function High -> "high" | Normal -> "normal" | Low -> "low"

type t = {
  req_id : int;
  req_bench : string; (* benchmark registry name *)
  req_system : string; (* system registry name *)
  req_config : CC.t; (* compile configuration the inference runs under *)
  req_priority : priority;
  req_arrival_s : float; (* virtual arrival time *)
  req_deadline_s : float; (* absolute virtual deadline; infinity = none *)
  req_tenant : Tenant_id.t; (* whose key material serves this request *)
  req_epoch : Epoch.t; (* key epoch bound at admission (Fleet stamps it) *)
}

let make ?config ?(priority = Normal) ?(deadline_s = infinity) ?(tenant = Tenant_id.default)
    ?(epoch = Epoch.zero) ~id ~bench ~system ~arrival_s () =
  if arrival_s < 0.0 || Float.is_nan arrival_s then
    invalid_arg "Request.make: arrival time must be >= 0";
  if Float.is_nan deadline_s then invalid_arg "Request.make: deadline must not be nan";
  let config = match config with Some c -> c | None -> CC.paper () in
  {
    req_id = id;
    req_bench = bench;
    req_system = system;
    req_config = config;
    req_priority = priority;
    req_arrival_s = arrival_s;
    req_deadline_s = deadline_s;
    req_tenant = tenant;
    req_epoch = epoch;
  }

(* Admission-time epoch binding: the fleet stamps the epoch its key
   store leased, and the request keeps it for life — a rotation that
   starts later never rebinds in-flight work. *)
let with_epoch r epoch = { r with req_epoch = epoch }

(* CKKS slot count of the request's ring: the hard cap on how many
   inferences one ciphertext batch can pack. *)
let slots r = 1 lsl max 0 (r.req_config.CC.log_n - 1)

let expired r ~now_s = r.req_deadline_s < now_s

(* Dispatch order: priority class first, then FIFO within a class
   (arrival, then id as the deterministic tiebreak). *)
let compare_order a b =
  match compare (priority_rank a.req_priority) (priority_rank b.req_priority) with
  | 0 -> (
    match Float.compare a.req_arrival_s b.req_arrival_s with
    | 0 -> compare a.req_id b.req_id
    | c -> c)
  | c -> c
