(* The single-node serving driver: a discrete-event loop over a
   virtual clock that plays an arrival list against one Node through
   the per-node Engine.

   Time model.  Admission, batching and completion bookkeeping run in
   VIRTUAL seconds — a batch dispatched at virtual time t whose
   executor reports s seconds of service occupies one of the node's
   simulated executors until t + s.  The executor itself (a compile +
   cycle-simulation through the Result_cache) is REAL work: every
   batch dispatchable at the same virtual instant is fanned across the
   pool and runs concurrently, and the loop blocks until all their
   service times are known before advancing the clock.  Because batch
   formation depends only on virtual times and service times are
   deterministic, the whole run is bit-identical for every pool size —
   the same property Runner.run_sweep has.

   Failure and drain semantics live in Engine (Transient retries up to
   [capacity.max_attempts]; drain closes admission but runs admitted
   work to completion); every request offered to [run] — including
   follow-ups injected by the node's [on_terminal] hook — appears in
   exactly one response. *)

module Tel = Cinnamon_telemetry.Telemetry
module Exec = Cinnamon_exec

type result = {
  responses : Response.t list; (* terminal-event order *)
  slo : Slo.t;
  makespan_s : float;
}

let cmp_arrival (a : Request.t) (b : Request.t) =
  match Float.compare a.Request.req_arrival_s b.Request.req_arrival_s with
  | 0 -> compare a.Request.req_id b.Request.req_id
  | c -> c

let run ?pool (node : Node.t) ~arrivals () =
  Tel.name_process ~pid:Engine.serve_pid "serve (virtual time)";
  let pending = ref (List.stable_sort cmp_arrival arrivals) in
  let responses = ref [] in
  let insert_pending rs =
    if rs <> [] then pending := List.merge cmp_arrival (List.stable_sort cmp_arrival rs) !pending
  in
  let respond resp =
    responses := resp :: !responses;
    (* closed-loop clients key their next request off this response *)
    insert_pending (node.Node.on_terminal resp)
  in
  let eng = Engine.create ~node ~respond in
  let now = ref 0.0 in
  let next_batch_id = ref 0 in
  let rec admit_due () =
    match !pending with
    | r :: rest when r.Request.req_arrival_s <= !now ->
      pending := rest;
      Engine.offer eng ~now_s:!now r;
      admit_due ()
    | _ -> ()
  in
  let dispatch () =
    match Engine.form_batches eng ~now_s:!now ~next_batch_id with
    | [] -> ()
    | batches ->
      let t_dispatch = !now in
      (* every batch dispatchable at this virtual instant compiles and
         simulates concurrently on the real pool *)
      let results =
        match pool with
        | Some p -> Exec.Pool.map p (Engine.execute eng ~now_s:t_dispatch) batches
        | None -> List.map (Engine.execute eng ~now_s:t_dispatch) batches
      in
      List.iter2 (fun b res -> Engine.commit eng ~now_s:t_dispatch b res) batches results
  in
  let rec loop () =
    Engine.maybe_close eng ~now_s:!now;
    admit_due ();
    Engine.shed_expired eng ~now_s:!now;
    Engine.observe_depth eng;
    dispatch ();
    if Engine.wants_dispatch eng then
      (* a permanently failed dispatch freed a worker with work still
         queued: dispatch again before advancing the clock *)
      loop ()
    else begin
      let next_arrival =
        match !pending with [] -> infinity | r :: _ -> r.Request.req_arrival_s
      in
      let next = Float.min next_arrival (Engine.next_completion_s eng) in
      if next < infinity then begin
        now := Float.max !now next;
        Engine.complete_due eng ~now_s:!now;
        loop ()
      end
      (* else: no pending arrivals, nothing queued, nothing in flight —
         fully drained *)
    end
  in
  loop ();
  { responses = List.rev !responses; slo = Engine.slo eng; makespan_s = !now }
