(* The serving scheduler: a discrete-event loop over a virtual clock
   that admits arrivals, sheds expired work, forms batches, and
   dispatches them onto Cinnamon_exec.Pool workers.

   Time model.  Admission, batching and completion bookkeeping run in
   VIRTUAL seconds — a batch dispatched at virtual time t whose
   executor reports s seconds of service occupies one of the
   [config.workers] simulated executors until t + s.  The executor
   itself (a compile + cycle-simulation through the Result_cache) is
   REAL work: every batch dispatchable at the same virtual instant is
   fanned across the pool and runs concurrently, and the loop blocks
   until all their service times are known before advancing the clock.
   Because batch formation depends only on virtual times and service
   times are deterministic, the whole run is bit-identical for every
   pool size — the same property Runner.run_sweep has.

   Failure model.  An executor may raise [Transient] (a worker hiccup:
   the batch is retried in place up to [config.max_attempts] total
   attempts) or any other exception (permanent: every request in the
   batch fails with a typed [Failed] outcome).  Admission rejections
   and deadline sheds are typed outcomes too — every request offered
   to [run] appears in exactly one response.

   Drain.  With [drain_after_s = Some d], admission closes at virtual
   time d (later arrivals are Rejected Closed) but every admitted
   request still runs to a terminal state before [run] returns; the
   natural end of the arrival list drains the same way. *)

module Tel = Cinnamon_telemetry.Telemetry
module Exec = Cinnamon_exec
module Error = Cinnamon_util.Error

exception Transient of string

type config = {
  workers : int; (* simulated parallel executors *)
  queue_capacity : int;
  max_batch : int; (* also capped per-batch by the ring's slot count *)
  max_attempts : int; (* total executor attempts per batch *)
  drain_after_s : float option; (* close admission at this virtual time *)
}

let default_config =
  { workers = 2; queue_capacity = 64; max_batch = 8; max_attempts = 3; drain_after_s = None }

type result = {
  responses : Response.t list; (* terminal-event order *)
  slo : Slo.t;
  makespan_s : float;
}

(* Virtual-time trace row for per-request events. *)
let serve_pid = 99

let c_admitted = Tel.Counter.make ~cat:"serve" "requests_admitted"
let c_rejected = Tel.Counter.make ~cat:"serve" "requests_rejected"
let c_shed = Tel.Counter.make ~cat:"serve" "requests_shed"
let c_completed = Tel.Counter.make ~cat:"serve" "requests_completed"
let c_failed = Tel.Counter.make ~cat:"serve" "requests_failed"
let c_retries = Tel.Counter.make ~cat:"serve" "batch_retries"
let c_batches = Tel.Counter.make ~cat:"serve" "batches_dispatched"

type inflight = {
  if_finish_s : float;
  if_started_s : float;
  if_batch : Batcher.batch;
  if_attempts : int;
}

let run ?pool ?(feedback = fun _ -> []) config ~executor ~arrivals () =
  if config.workers < 1 then Error.fail Error.Invalid_input "Server.run: workers must be >= 1";
  if config.max_batch < 1 then Error.fail Error.Invalid_input "Server.run: max_batch must be >= 1";
  if config.max_attempts < 1 then Error.fail Error.Invalid_input "Server.run: max_attempts must be >= 1";
  Tel.name_process ~pid:serve_pid "serve (virtual time)";
  let q = Admission.create ~capacity:config.queue_capacity in
  let slo = Slo.create () in
  let cmp_arrival (a : Request.t) (b : Request.t) =
    match Float.compare a.Request.req_arrival_s b.Request.req_arrival_s with
    | 0 -> compare a.Request.req_id b.Request.req_id
    | c -> c
  in
  let pending = ref (List.stable_sort cmp_arrival arrivals) in
  let inflight = ref ([] : inflight list) (* sorted by if_finish_s *) in
  let free = ref config.workers in
  let now = ref 0.0 in
  let next_batch_id = ref 0 in
  let responses = ref [] in
  let insert_pending rs =
    if rs <> [] then pending := List.merge cmp_arrival (List.stable_sort cmp_arrival rs) !pending
  in
  let rec respond (req : Request.t) (outcome : Response.outcome) =
    let resp = { Response.req; outcome } in
    (match outcome with
    | Response.Completed c ->
      Slo.observe_completed slo
        ~latency_s:(c.finished_s -. req.Request.req_arrival_s)
        ~met:(c.finished_s <= req.Request.req_deadline_s);
      Tel.Counter.incr c_completed;
      Tel.emit_complete ~cat:"serve" ~pid:serve_pid
        ~tid:(Request.priority_rank req.Request.req_priority)
        ~ts:(req.Request.req_arrival_s *. 1e6)
        ~dur:((c.finished_s -. req.Request.req_arrival_s) *. 1e6)
        ~args:
          [ ("bench", Tel.Str req.Request.req_bench); ("system", Tel.Str req.Request.req_system);
            ("batch", Tel.Int c.batch_id);
            ("deadline_met", Tel.Str (if Response.met_deadline resp then "yes" else "no")) ]
        (Printf.sprintf "%s@%s" req.Request.req_bench req.Request.req_system)
    | Response.Rejected e ->
      Slo.observe_rejected slo e;
      Tel.Counter.incr c_rejected
    | Response.Shed s ->
      Slo.observe_shed slo;
      Tel.Counter.incr c_shed;
      Tel.emit_instant ~cat:"serve" ~pid:serve_pid
        ~tid:(Request.priority_rank req.Request.req_priority)
        ~ts:(s.shed_s *. 1e6) "shed"
    | Response.Failed _ ->
      Slo.observe_failed slo;
      Tel.Counter.incr c_failed);
    responses := resp :: !responses;
    (* closed-loop clients key their next request off this response *)
    insert_pending (feedback resp)
  and admit_due () =
    match !pending with
    | r :: rest when r.Request.req_arrival_s <= !now ->
      pending := rest;
      Slo.observe_offered slo;
      (match Admission.admit q ~now_s:!now r with
      | Ok () ->
        Slo.observe_admitted slo;
        Tel.Counter.incr c_admitted
      | Error e -> respond r (Response.Rejected e));
      admit_due ()
    | _ -> ()
  in
  let maybe_close () =
    match config.drain_after_s with
    | Some d when !now >= d && not (Admission.is_closed q) -> Admission.close q
    | _ -> ()
  in
  let shed_now () =
    List.iter
      (fun (r : Request.t) ->
        respond r (Response.Shed { deadline_s = r.Request.req_deadline_s; shed_s = !now }))
      (Admission.shed_expired q ~now_s:!now)
  in
  (* One executor call per batch, with in-place retries on Transient.
     Runs on a pool worker; returns attempts alongside the verdict. *)
  let exec_one t_dispatch (b : Batcher.batch) =
    let rec attempt k =
      match
        Tel.Span.with_ ~cat:"serve" "serve.execute"
          ~args:
            [ ("key", Tel.Str b.Batcher.batch_key); ("size", Tel.Int (Batcher.size b));
              ("attempt", Tel.Int k) ]
          (fun () -> executor ~now_s:t_dispatch b)
      with
      | s when Float.is_nan s || s < 0.0 ->
        Error (k, Printf.sprintf "executor returned invalid service time %g" s)
      | s -> Ok (s, k)
      | exception Transient msg ->
        if k >= config.max_attempts then Error (k, "transient (retries exhausted): " ^ msg)
        else attempt (k + 1)
      | exception e -> Error (k, Printexc.to_string e)
    in
    attempt 1
  in
  let insert_inflight entry =
    let rec ins = function
      | [] -> [ entry ]
      | x :: rest as l -> if entry.if_finish_s < x.if_finish_s then entry :: l else x :: ins rest
    in
    inflight := ins !inflight
  in
  let dispatch () =
    let rec collect acc =
      if !free <= 0 then List.rev acc
      else
        match Batcher.form q ~now_s:!now ~max_batch:config.max_batch ~batch_id:!next_batch_id with
        | None -> List.rev acc
        | Some b ->
          incr next_batch_id;
          decr free;
          collect (b :: acc)
    in
    match collect [] with
    | [] -> ()
    | batches ->
      let t_dispatch = !now in
      (* every batch dispatchable at this virtual instant compiles and
         simulates concurrently on the real pool *)
      let results =
        match pool with
        | Some p -> Exec.Pool.map p (exec_one t_dispatch) batches
        | None -> List.map (exec_one t_dispatch) batches
      in
      List.iter2
        (fun (b : Batcher.batch) res ->
          Slo.observe_batch slo ~size:(Batcher.size b);
          Tel.Counter.incr c_batches;
          match res with
          | Ok (service_s, attempts) ->
            Slo.observe_retries slo (attempts - 1);
            Tel.Counter.add c_retries (attempts - 1);
            insert_inflight
              {
                if_finish_s = t_dispatch +. service_s;
                if_started_s = t_dispatch;
                if_batch = b;
                if_attempts = attempts;
              }
          | Error (attempts, reason) ->
            Slo.observe_retries slo (attempts - 1);
            Tel.Counter.add c_retries (attempts - 1);
            incr free;
            List.iter
              (fun r ->
                respond r (Response.Failed { attempts; failed_s = t_dispatch; reason }))
              b.Batcher.requests)
        batches results
  in
  let complete_due () =
    let rec go () =
      match !inflight with
      | entry :: rest when entry.if_finish_s <= !now ->
        inflight := rest;
        incr free;
        let b = entry.if_batch in
        let size = Batcher.size b in
        List.iter
          (fun r ->
            respond r
              (Response.Completed
                 {
                   started_s = entry.if_started_s;
                   finished_s = entry.if_finish_s;
                   attempts = entry.if_attempts;
                   batch_id = b.Batcher.batch_id;
                   batch_size = size;
                 }))
          b.Batcher.requests;
        go ()
      | _ -> ()
    in
    go ()
  in
  let rec loop () =
    maybe_close ();
    admit_due ();
    shed_now ();
    Slo.observe_queue_depth slo (Admission.depth q);
    dispatch ();
    if (not (Admission.is_empty q)) && !free > 0 then
      (* a permanently failed dispatch freed a worker with work still
         queued: dispatch again before advancing the clock *)
      loop ()
    else begin
      let next_arrival =
        match !pending with [] -> infinity | r :: _ -> r.Request.req_arrival_s
      in
      let next_completion =
        match !inflight with [] -> infinity | e :: _ -> e.if_finish_s
      in
      let next = Float.min next_arrival next_completion in
      if next < infinity then begin
        now := Float.max !now next;
        complete_due ();
        loop ()
      end
      (* else: no pending arrivals, nothing queued, nothing in flight —
         fully drained *)
    end
  in
  loop ();
  { responses = List.rev !responses; slo; makespan_s = !now }
