(** Dynamic batching of compatible requests.

    Two requests are compatible — may share one compiled program and
    one CKKS slot-packed execution — iff they name the same benchmark
    and system and carry structurally identical compile configurations
    ({!compat_key}).  Batch size is capped by the caller's maximum and
    by the ring's slot count ([Request.slots]). *)

type batch = private {
  batch_id : int;
  batch_key : string;
  requests : Request.t list;  (** dispatch order; non-empty *)
  formed_s : float;
}

val size : batch -> int

(** The compatibility key: benchmark name, system name, and a digest
    of {!Cinnamon_exec.Cache_key.config_sig} — the same structural
    rendering of the compile configuration (every behavioural field)
    the result cache keys on. *)
val compat_key : Request.t -> string

(** [form q ~now_s ~max_batch ~batch_id] pops the head-of-line request
    and every compatible queued request (in dispatch order) up to
    [min max_batch (slot count)]; [None] iff the queue is empty. *)
val form : Admission.t -> now_s:float -> max_batch:int -> batch_id:int -> batch option
