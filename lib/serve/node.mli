(** A serving node as a first-class value.

    The typed record every scheduler-facing component implements:
    {!Loadgen} wraps the real compile+simulate executor in one, tests
    build synthetic ones, and the fleet router drives heterogeneous
    nodes through this one interface.  It replaces the loose
    [~executor] / [?feedback] labelled arguments [Server.run] used to
    take. *)

(** Raised by {!t.execute} to signal a retryable failure; the
    scheduler re-runs the batch in place, up to
    [capacity.max_attempts] total attempts.  Any other exception fails
    the batch permanently. *)
exception Transient of string

type capacity = {
  workers : int;  (** simulated parallel executors, >= 1 *)
  queue_capacity : int;  (** admission queue bound, >= 1 *)
  max_batch : int;
      (** upper bound on batch size; each batch is further capped by
          its ring's CKKS slot count ({!Request.slots}) *)
  max_attempts : int;  (** total executor attempts per batch, >= 1 *)
  drain_after_s : float option;
      (** close admission at this virtual time; admitted work still
          drains to completion *)
}

(** workers 2, capacity 64, max batch 8, 3 attempts, no forced drain. *)
val default_capacity : capacity

type t = {
  name : string;
  execute : now_s:float -> Batcher.batch -> float;
      (** the node's real work: compile + simulate the batch and
          return its service time in virtual seconds; runs on pool
          workers, so it must not touch node-local mutable state *)
  on_terminal : Response.t -> Request.t list;
      (** terminal-response hook returning follow-up requests to
          inject via the caller's routing, e.g. closed-loop think
          time *)
  capacity : capacity;
}

(** Raises a typed [Invalid_input] error on a non-positive field. *)
val validate_capacity : capacity -> unit

(** [make ~execute ()] builds a node; [on_terminal] defaults to "no
    follow-ups", [capacity] to {!default_capacity} (validated). *)
val make :
  ?name:string ->
  ?on_terminal:(Response.t -> Request.t list) ->
  ?capacity:capacity ->
  execute:(now_s:float -> Batcher.batch -> float) ->
  unit ->
  t
