(** The serving scheduler: a deterministic discrete-event loop over a
    virtual clock.

    Admission, batching and completions are bookkept in virtual
    seconds; the executor (compile + cycle simulation) is real work,
    fanned across an {!Cinnamon_exec.Pool} when all the batches
    dispatchable at one virtual instant are known.  Results are
    bit-identical for any pool size.

    Every request in [arrivals] (and every request injected via
    [feedback]) reaches exactly one terminal {!Response.t}. *)

(** Raised by an executor to signal a retryable failure; the server
    re-runs the batch in place, up to [max_attempts] total attempts.
    Any other exception fails the batch permanently. *)
exception Transient of string

type config = {
  workers : int;  (** simulated parallel executors, >= 1 *)
  queue_capacity : int;
  max_batch : int;
      (** upper bound on batch size; each batch is further capped by
          its ring's CKKS slot count ({!Request.slots}) *)
  max_attempts : int;  (** total executor attempts per batch, >= 1 *)
  drain_after_s : float option;
      (** close admission at this virtual time; admitted work still
          drains to completion *)
}

(** workers 2, capacity 64, max batch 8, 3 attempts, no forced drain. *)
val default_config : config

type result = {
  responses : Response.t list;  (** in terminal-event order *)
  slo : Slo.t;
  makespan_s : float;  (** virtual time the last event settled *)
}

(** [run config ~executor ~arrivals ()] plays the arrival list to
    completion.  [executor ~now_s batch] performs the batch's real
    compile/simulate work and returns its {e service time} in virtual
    seconds (it runs on a pool worker when [pool] is given).
    [feedback] is invoked on every terminal response and returns
    follow-up requests to inject — closed-loop load generators use it
    to model think time.  Raises [Invalid_argument] on a non-positive
    [workers], [max_batch] or [max_attempts]. *)
val run :
  ?pool:Cinnamon_exec.Pool.t ->
  ?feedback:(Response.t -> Request.t list) ->
  config ->
  executor:(now_s:float -> Batcher.batch -> float) ->
  arrivals:Request.t list ->
  unit ->
  result
