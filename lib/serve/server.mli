(** The single-node serving driver: a deterministic discrete-event
    loop over a virtual clock.

    Admission, batching and completions are bookkept in virtual
    seconds; the node's executor (compile + cycle simulation) is real
    work, fanned across an {!Cinnamon_exec.Pool} when all the batches
    dispatchable at one virtual instant are known.  Results are
    bit-identical for any pool size.

    Every request in [arrivals] (and every follow-up injected by the
    node's [on_terminal] hook) reaches exactly one terminal
    {!Response.t}.  Fleets of nodes are driven by [Cinnamon_fleet]
    through the same {!Engine} core. *)

type result = {
  responses : Response.t list;  (** in terminal-event order *)
  slo : Slo.t;
  makespan_s : float;  (** virtual time the last event settled *)
}

(** [run node ~arrivals ()] plays the arrival list to completion
    against [node] — its [execute] performs each batch's real
    compile/simulate work and returns the service time in virtual
    seconds (on a pool worker when [pool] is given), its [on_terminal]
    may inject follow-up requests, and its [capacity] bounds workers,
    queueing, batching, retries and drain.  Raises a typed
    [Invalid_input] error on a non-positive capacity field. *)
val run : ?pool:Cinnamon_exec.Pool.t -> Node.t -> arrivals:Request.t list -> unit -> result
