(* The per-node serving core: admission queue, batch formation,
   executor retries, simulated-worker occupancy, and SLO accounting for
   ONE node, exposed as incremental steps on a caller-owned virtual
   clock.

   Server.run drives a single engine to completion; Fleet.run drives N
   of them from one loop, which is why this is step-at-a-time rather
   than run-to-completion: at each virtual instant the fleet forms
   batches on every node ([form_batches]), fans ALL of them across one
   shared Exec.Pool ([execute] is pool-safe — it touches no engine
   state), then commits results back per node ([commit]).  Batch
   formation and commit order are sequential and virtual-time-only, so
   runs stay bit-identical for any pool size.

   Terminal responses stream through the [respond] callback given at
   [create]; the engine never retains them, so drivers that only count
   (million-request fleet sweeps) stay O(inflight) in memory.  SLO
   observations (offered/admitted/rejected/shed/failed/completed,
   batches, retries, depth gauge) happen here, against this node's
   accumulator; drivers fold per-node accumulators with [Slo.merge]. *)

module Tel = Cinnamon_telemetry.Telemetry

(* Virtual-time trace rows for per-request events. *)
let serve_pid = 99

let c_admitted = Tel.Counter.make ~cat:"serve" "requests_admitted"
let c_rejected = Tel.Counter.make ~cat:"serve" "requests_rejected"
let c_shed = Tel.Counter.make ~cat:"serve" "requests_shed"
let c_completed = Tel.Counter.make ~cat:"serve" "requests_completed"
let c_failed = Tel.Counter.make ~cat:"serve" "requests_failed"
let c_retries = Tel.Counter.make ~cat:"serve" "batch_retries"
let c_batches = Tel.Counter.make ~cat:"serve" "batches_dispatched"

type inflight = {
  if_finish_s : float;
  if_started_s : float;
  if_batch : Batcher.batch;
  if_attempts : int;
}

type exec_outcome = (float * int, int * string) result

type t = {
  node : Node.t;
  q : Admission.t;
  slo : Slo.t;
  respond : Response.t -> unit;
  mutable inflight : inflight list; (* sorted by if_finish_s *)
  mutable free : int;
}

let create ~node ~respond =
  Node.validate_capacity node.Node.capacity;
  {
    node;
    q = Admission.create ~capacity:node.Node.capacity.Node.queue_capacity;
    slo = Slo.create ();
    respond;
    inflight = [];
    free = node.Node.capacity.Node.workers;
  }

let node t = t.node
let name t = t.node.Node.name
let slo t = t.slo
let queue_depth t = Admission.depth t.q
let free_workers t = t.free

let inflight_requests t =
  List.fold_left (fun n e -> n + Batcher.size e.if_batch) 0 t.inflight

(* Router's least-loaded signal: work accepted but not yet finished. *)
let load t = queue_depth t + inflight_requests t
let has_room t = (not (Admission.is_closed t.q)) && queue_depth t < Admission.capacity t.q
let is_closed t = Admission.is_closed t.q
let close t = if not (Admission.is_closed t.q) then Admission.close t.q
let is_drained t = Admission.is_empty t.q && t.inflight = []

let respond t (req : Request.t) (outcome : Response.outcome) =
  let resp = { Response.req; outcome } in
  (match outcome with
  | Response.Completed c ->
    Slo.observe_completed t.slo
      ~latency_s:(c.finished_s -. req.Request.req_arrival_s)
      ~met:(c.finished_s <= req.Request.req_deadline_s);
    Tel.Counter.incr c_completed;
    Tel.emit_complete ~cat:"serve" ~pid:serve_pid
      ~tid:(Request.priority_rank req.Request.req_priority)
      ~ts:(req.Request.req_arrival_s *. 1e6)
      ~dur:((c.finished_s -. req.Request.req_arrival_s) *. 1e6)
      ~args:
        [ ("bench", Tel.Str req.Request.req_bench); ("system", Tel.Str req.Request.req_system);
          ("node", Tel.Str t.node.Node.name); ("batch", Tel.Int c.batch_id);
          ("deadline_met", Tel.Str (if Response.met_deadline resp then "yes" else "no")) ]
      (Printf.sprintf "%s@%s" req.Request.req_bench req.Request.req_system)
  | Response.Rejected e ->
    Slo.observe_rejected t.slo e;
    Tel.Counter.incr c_rejected
  | Response.Shed s ->
    Slo.observe_shed t.slo;
    Tel.Counter.incr c_shed;
    Tel.emit_instant ~cat:"serve" ~pid:serve_pid
      ~tid:(Request.priority_rank req.Request.req_priority)
      ~ts:(s.shed_s *. 1e6) "shed"
  | Response.Failed _ ->
    Slo.observe_failed t.slo;
    Tel.Counter.incr c_failed);
  t.respond resp

let offer t ~now_s r =
  Slo.observe_offered t.slo;
  match Admission.admit t.q ~now_s r with
  | Ok () ->
    Slo.observe_admitted t.slo;
    Tel.Counter.incr c_admitted
  | Error e -> respond t r (Response.Rejected e)

let maybe_close t ~now_s =
  match t.node.Node.capacity.Node.drain_after_s with
  | Some d when now_s >= d -> close t
  | _ -> ()

let shed_expired t ~now_s =
  List.iter
    (fun (r : Request.t) ->
      respond t r (Response.Shed { deadline_s = r.Request.req_deadline_s; shed_s = now_s }))
    (Admission.shed_expired t.q ~now_s)

let observe_depth t = Slo.observe_queue_depth t.slo (Admission.depth t.q)
let wants_dispatch t = t.free > 0 && not (Admission.is_empty t.q)

let form_batches t ~now_s ~next_batch_id =
  let rec collect acc =
    if t.free <= 0 then List.rev acc
    else
      match
        Batcher.form t.q ~now_s ~max_batch:t.node.Node.capacity.Node.max_batch
          ~batch_id:!next_batch_id
      with
      | None -> List.rev acc
      | Some b ->
        incr next_batch_id;
        t.free <- t.free - 1;
        collect (b :: acc)
  in
  collect []

(* One executor call per batch, with in-place retries on Transient.
   Touches no engine state, so the caller may run it on a pool worker
   — including batches from many engines in one Pool.map. *)
let execute t ~now_s (b : Batcher.batch) : exec_outcome =
  let max_attempts = t.node.Node.capacity.Node.max_attempts in
  let rec attempt k =
    match
      Tel.Span.with_ ~cat:"serve" "serve.execute"
        ~args:
          [ ("key", Tel.Str b.Batcher.batch_key); ("size", Tel.Int (Batcher.size b));
            ("node", Tel.Str t.node.Node.name); ("attempt", Tel.Int k) ]
        (fun () -> t.node.Node.execute ~now_s b)
    with
    | s when Float.is_nan s || s < 0.0 ->
      Error (k, Printf.sprintf "executor returned invalid service time %g" s)
    | s -> Ok (s, k)
    | exception Node.Transient msg ->
      if k >= max_attempts then Error (k, "transient (retries exhausted): " ^ msg)
      else attempt (k + 1)
    | exception e -> Error (k, Printexc.to_string e)
  in
  attempt 1

let insert_inflight t entry =
  let rec ins = function
    | [] -> [ entry ]
    | x :: rest as l -> if entry.if_finish_s < x.if_finish_s then entry :: l else x :: ins rest
  in
  t.inflight <- ins t.inflight

let commit t ~now_s ?(extra_service_s = 0.0) (b : Batcher.batch) (res : exec_outcome) =
  Slo.observe_batch t.slo ~size:(Batcher.size b);
  Tel.Counter.incr c_batches;
  match res with
  | Ok (service_s, attempts) ->
    Slo.observe_retries t.slo (attempts - 1);
    Tel.Counter.add c_retries (attempts - 1);
    insert_inflight t
      {
        if_finish_s = now_s +. service_s +. extra_service_s;
        if_started_s = now_s;
        if_batch = b;
        if_attempts = attempts;
      }
  | Error (attempts, reason) ->
    Slo.observe_retries t.slo (attempts - 1);
    Tel.Counter.add c_retries (attempts - 1);
    t.free <- t.free + 1;
    List.iter
      (fun r -> respond t r (Response.Failed { attempts; failed_s = now_s; reason }))
      b.Batcher.requests

let next_completion_s t = match t.inflight with [] -> infinity | e :: _ -> e.if_finish_s

let complete_due t ~now_s =
  let rec go () =
    match t.inflight with
    | entry :: rest when entry.if_finish_s <= now_s ->
      t.inflight <- rest;
      t.free <- t.free + 1;
      let b = entry.if_batch in
      let size = Batcher.size b in
      List.iter
        (fun r ->
          respond t r
            (Response.Completed
               {
                 started_s = entry.if_started_s;
                 finished_s = entry.if_finish_s;
                 attempts = entry.if_attempts;
                 batch_id = b.Batcher.batch_id;
                 batch_size = size;
               }))
        b.Batcher.requests;
      go ()
    | _ -> ()
  in
  go ()
