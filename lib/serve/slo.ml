(* SLO accounting: a streaming accumulator the server feeds as requests
   reach terminal states, and a report computed at the end of a run.

   Latencies stream into a fixed-bucket geometric histogram
   (Cinnamon_util.Stats.Histogram), so memory is O(buckets) however
   long the run; p50/p95/p99 are bucket-interpolated quantiles.
   Percentile/mean/max fields are [None] when nothing completed — a
   zero-completion report serializes to valid JSON ([null] fields),
   never to bare [nan] tokens.

   Fleet runs keep one accumulator per node (plus one at the router
   for fleet-level rejections) and fold them with [merge]: counters
   add, histograms add bucketwise, and the queue-depth gauge pools its
   samples — deterministic whatever order the nodes are listed in.

   Definitions:
   - throughput = completed / duration;
   - goodput    = deadline-met completions / duration (the paper-world
     serving metric: work delivered in time);
   - shed rate  = shed / admitted (admitted work the server gave up on);
   - reject rate = rejected / offered (work refused at the door,
     whether by one node's queue or by fleet-wide backpressure). *)

module H = Cinnamon_util.Stats.Histogram
module Json = Cinnamon_util.Json

type t = {
  hist : H.t; (* completed-request latency, seconds *)
  mutable offered : int;
  mutable admitted : int;
  mutable rejected_full : int;
  mutable rejected_expired : int;
  mutable rejected_closed : int;
  mutable rejected_fleet : int;
  mutable rejected_tenant : int;
  mutable shed : int;
  mutable failed : int;
  mutable completed : int;
  mutable deadline_met : int;
  mutable retries : int;
  mutable batches : int;
  mutable batched_requests : int;
  mutable depth_sum : int;
  mutable depth_samples : int;
  mutable depth_max : int;
}

let create () =
  {
    (* 1 us .. ~28 h of virtual latency at ~4% bucket resolution *)
    hist = H.make ~lo:1e-6 ~hi:1e5 ();
    offered = 0;
    admitted = 0;
    rejected_full = 0;
    rejected_expired = 0;
    rejected_closed = 0;
    rejected_fleet = 0;
    rejected_tenant = 0;
    shed = 0;
    failed = 0;
    completed = 0;
    deadline_met = 0;
    retries = 0;
    batches = 0;
    batched_requests = 0;
    depth_sum = 0;
    depth_samples = 0;
    depth_max = 0;
  }

let observe_offered t = t.offered <- t.offered + 1
let observe_admitted t = t.admitted <- t.admitted + 1

let observe_rejected t (e : Admission.error) =
  match e with
  | Admission.Queue_full _ -> t.rejected_full <- t.rejected_full + 1
  | Admission.Expired _ -> t.rejected_expired <- t.rejected_expired + 1
  | Admission.Closed -> t.rejected_closed <- t.rejected_closed + 1
  | Admission.Fleet_full _ -> t.rejected_fleet <- t.rejected_fleet + 1
  | Admission.Tenant_unavailable _ -> t.rejected_tenant <- t.rejected_tenant + 1

let observe_shed t = t.shed <- t.shed + 1
let observe_failed t = t.failed <- t.failed + 1

let observe_completed t ~latency_s ~met =
  t.completed <- t.completed + 1;
  if met then t.deadline_met <- t.deadline_met + 1;
  H.add t.hist (Float.max 0.0 latency_s)

let observe_retries t n = if n > 0 then t.retries <- t.retries + n

let observe_batch t ~size =
  t.batches <- t.batches + 1;
  t.batched_requests <- t.batched_requests + size

let observe_queue_depth t d =
  t.depth_sum <- t.depth_sum + d;
  t.depth_samples <- t.depth_samples + 1;
  if d > t.depth_max then t.depth_max <- d

(* Live gauges the autoscaler reads mid-run (the report below is
   end-of-run only). *)
let completed t = t.completed
let deadline_met t = t.deadline_met
let live_p99_ms t = if t.completed = 0 then None else Some (H.quantile t.hist 0.99 *. 1e3)

let merge ts =
  let acc = create () in
  List.iter
    (fun s ->
      H.merge_into ~dst:acc.hist s.hist;
      acc.offered <- acc.offered + s.offered;
      acc.admitted <- acc.admitted + s.admitted;
      acc.rejected_full <- acc.rejected_full + s.rejected_full;
      acc.rejected_expired <- acc.rejected_expired + s.rejected_expired;
      acc.rejected_closed <- acc.rejected_closed + s.rejected_closed;
      acc.rejected_fleet <- acc.rejected_fleet + s.rejected_fleet;
      acc.rejected_tenant <- acc.rejected_tenant + s.rejected_tenant;
      acc.shed <- acc.shed + s.shed;
      acc.failed <- acc.failed + s.failed;
      acc.completed <- acc.completed + s.completed;
      acc.deadline_met <- acc.deadline_met + s.deadline_met;
      acc.retries <- acc.retries + s.retries;
      acc.batches <- acc.batches + s.batches;
      acc.batched_requests <- acc.batched_requests + s.batched_requests;
      acc.depth_sum <- acc.depth_sum + s.depth_sum;
      acc.depth_samples <- acc.depth_samples + s.depth_samples;
      if s.depth_max > acc.depth_max then acc.depth_max <- s.depth_max)
    ts;
  acc

type report = {
  rp_offered : int;
  rp_admitted : int;
  rp_rejected_full : int;
  rp_rejected_expired : int;
  rp_rejected_closed : int;
  rp_rejected_fleet : int;
  rp_rejected_tenant : int;
  rp_shed : int;
  rp_failed : int;
  rp_completed : int;
  rp_deadline_met : int;
  rp_retries : int;
  rp_batches : int;
  rp_mean_batch : float;
  rp_p50_ms : float option;
  rp_p95_ms : float option;
  rp_p99_ms : float option;
  rp_mean_ms : float option;
  rp_max_ms : float option;
  rp_throughput_rps : float;
  rp_goodput_rps : float;
  rp_shed_rate : float;
  rp_reject_rate : float;
  rp_queue_depth_mean : float;
  rp_queue_depth_max : int;
  rp_duration_s : float;
  rp_compiles : int;
  rp_cache_hits : int;
}

let report t ~duration_s ~compiles ~cache_hits =
  let dur = Float.max duration_s 1e-12 in
  (* zero-completion runs have no latency distribution: None, not nan *)
  let ms v = if t.completed = 0 || Float.is_nan v then None else Some (v *. 1e3) in
  let ratio a b = if b = 0 then 0.0 else Float.of_int a /. Float.of_int b in
  {
    rp_offered = t.offered;
    rp_admitted = t.admitted;
    rp_rejected_full = t.rejected_full;
    rp_rejected_expired = t.rejected_expired;
    rp_rejected_closed = t.rejected_closed;
    rp_rejected_fleet = t.rejected_fleet;
    rp_rejected_tenant = t.rejected_tenant;
    rp_shed = t.shed;
    rp_failed = t.failed;
    rp_completed = t.completed;
    rp_deadline_met = t.deadline_met;
    rp_retries = t.retries;
    rp_batches = t.batches;
    rp_mean_batch = (if t.batches = 0 then 0.0 else ratio t.batched_requests t.batches);
    rp_p50_ms = ms (H.quantile t.hist 0.50);
    rp_p95_ms = ms (H.quantile t.hist 0.95);
    rp_p99_ms = ms (H.quantile t.hist 0.99);
    rp_mean_ms = ms (H.mean t.hist);
    rp_max_ms = ms (H.max_value t.hist);
    rp_throughput_rps = Float.of_int t.completed /. dur;
    rp_goodput_rps = Float.of_int t.deadline_met /. dur;
    rp_shed_rate = ratio t.shed t.admitted;
    rp_reject_rate =
      ratio
        (t.rejected_full + t.rejected_expired + t.rejected_closed + t.rejected_fleet
       + t.rejected_tenant)
        t.offered;
    rp_queue_depth_mean =
      (if t.depth_samples = 0 then 0.0 else ratio t.depth_sum t.depth_samples);
    rp_queue_depth_max = t.depth_max;
    rp_duration_s = duration_s;
    rp_compiles = compiles;
    rp_cache_hits = cache_hits;
  }

let json_opt = function None -> Json.Null | Some v -> Json.Float v

let report_json r =
  Json.Obj
    [
      ("offered", Json.Int r.rp_offered);
      ("admitted", Json.Int r.rp_admitted);
      ("rejected_queue_full", Json.Int r.rp_rejected_full);
      ("rejected_expired", Json.Int r.rp_rejected_expired);
      ("rejected_closed", Json.Int r.rp_rejected_closed);
      ("rejected_fleet_full", Json.Int r.rp_rejected_fleet);
      ("rejected_tenant", Json.Int r.rp_rejected_tenant);
      ("shed", Json.Int r.rp_shed);
      ("failed", Json.Int r.rp_failed);
      ("completed", Json.Int r.rp_completed);
      ("deadline_met", Json.Int r.rp_deadline_met);
      ("retries", Json.Int r.rp_retries);
      ("batches", Json.Int r.rp_batches);
      ("mean_batch", Json.Float r.rp_mean_batch);
      ("p50_ms", json_opt r.rp_p50_ms);
      ("p95_ms", json_opt r.rp_p95_ms);
      ("p99_ms", json_opt r.rp_p99_ms);
      ("mean_ms", json_opt r.rp_mean_ms);
      ("max_ms", json_opt r.rp_max_ms);
      ("throughput_rps", Json.Float r.rp_throughput_rps);
      ("goodput_rps", Json.Float r.rp_goodput_rps);
      ("shed_rate", Json.Float r.rp_shed_rate);
      ("reject_rate", Json.Float r.rp_reject_rate);
      ("queue_depth_mean", Json.Float r.rp_queue_depth_mean);
      ("queue_depth_max", Json.Int r.rp_queue_depth_max);
      ("duration_s", Json.Float r.rp_duration_s);
      ("compiles", Json.Int r.rp_compiles);
      ("cache_hits", Json.Int r.rp_cache_hits);
    ]

let fmt_ms = function None -> "-" | Some v -> Printf.sprintf "%.3f ms" v

let to_string r =
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  line "requests: offered %d, admitted %d, completed %d (%d met deadline), shed %d, failed %d"
    r.rp_offered r.rp_admitted r.rp_completed r.rp_deadline_met r.rp_shed r.rp_failed;
  line
    "rejected: %d queue-full, %d expired-on-arrival, %d during drain, %d fleet-full, %d \
     tenant-unavailable"
    r.rp_rejected_full r.rp_rejected_expired r.rp_rejected_closed r.rp_rejected_fleet
    r.rp_rejected_tenant;
  line "latency:  p50 %s, p95 %s, p99 %s, mean %s, max %s" (fmt_ms r.rp_p50_ms)
    (fmt_ms r.rp_p95_ms) (fmt_ms r.rp_p99_ms) (fmt_ms r.rp_mean_ms) (fmt_ms r.rp_max_ms);
  line "rates:    throughput %.2f req/s, goodput %.2f req/s, shed rate %.1f%%, reject rate %.1f%%"
    r.rp_throughput_rps r.rp_goodput_rps (100.0 *. r.rp_shed_rate) (100.0 *. r.rp_reject_rate);
  line "batching: %d batches, mean size %.2f; %d compiles for %d admitted (%d cache hits)"
    r.rp_batches r.rp_mean_batch r.rp_compiles r.rp_admitted r.rp_cache_hits;
  line "queue:    mean depth %.2f, max depth %d; retries %d; virtual duration %.3f s"
    r.rp_queue_depth_mean r.rp_queue_depth_max r.rp_retries r.rp_duration_s;
  Buffer.contents b

let print r = print_string (to_string r)
