(** SLO accounting for the serving layer.

    A streaming accumulator ({!t}) the server feeds as requests reach
    terminal states — latencies go into a fixed-bucket streaming
    histogram ({!Cinnamon_util.Stats.Histogram}), so memory stays
    O(buckets) — and a {!report} computed once the run ends.

    Fleet runs keep one accumulator per node plus one at the router
    and fold them with {!merge} before reporting; the fold is purely
    additive, so the merged report is deterministic in node order.

    Definitions: {b throughput} = completions per virtual second;
    {b goodput} = deadline-met completions per virtual second;
    {b shed rate} = shed / admitted; {b reject rate} = rejected /
    offered. *)

type t

val create : unit -> t

(** {1 Streaming observations} *)

val observe_offered : t -> unit
val observe_admitted : t -> unit
val observe_rejected : t -> Admission.error -> unit
val observe_shed : t -> unit
val observe_failed : t -> unit
val observe_completed : t -> latency_s:float -> met:bool -> unit

(** Count [n] additional execution attempts ([n <= 0] is a no-op). *)
val observe_retries : t -> int -> unit

val observe_batch : t -> size:int -> unit

(** Queue-depth gauge, sampled by the server at every event-loop step. *)
val observe_queue_depth : t -> int -> unit

(** {1 Live gauges}

    Mid-run signals for the autoscaler; the full {!report} is
    end-of-run only. *)

val completed : t -> int
val deadline_met : t -> int

(** Streaming 99th-percentile latency over completions so far; [None]
    until something completes. *)
val live_p99_ms : t -> float option

(** Fold accumulators (per-node + router) into a fresh fleet-wide one:
    counters add, latency histograms add bucketwise, the depth gauge
    pools its samples.  Deterministic in list order. *)
val merge : t list -> t

(** {1 Report} *)

type report = {
  rp_offered : int;
  rp_admitted : int;
  rp_rejected_full : int;
  rp_rejected_expired : int;
  rp_rejected_closed : int;
  rp_rejected_fleet : int;  (** router-level global backpressure *)
  rp_rejected_tenant : int;  (** tenant key store refused the lease *)
  rp_shed : int;
  rp_failed : int;
  rp_completed : int;
  rp_deadline_met : int;
  rp_retries : int;
  rp_batches : int;
  rp_mean_batch : float;
  rp_p50_ms : float option;  (** [None] when nothing completed *)
  rp_p95_ms : float option;
  rp_p99_ms : float option;
  rp_mean_ms : float option;
  rp_max_ms : float option;
  rp_throughput_rps : float;
  rp_goodput_rps : float;
  rp_shed_rate : float;
  rp_reject_rate : float;
  rp_queue_depth_mean : float;
  rp_queue_depth_max : int;
  rp_duration_s : float;
  rp_compiles : int;  (** pipeline compiles actually run (cache misses) *)
  rp_cache_hits : int;
}

val report : t -> duration_s:float -> compiles:int -> cache_hits:int -> report

(** The [serve_loadtest]/[serve_fleet] JSON shape; absent percentiles
    (zero completions) render as [null], so the document is always
    valid JSON. *)
val report_json : report -> Cinnamon_util.Json.t

val to_string : report -> string
val print : report -> unit
