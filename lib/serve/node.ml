(* A serving node as a first-class value: what it can do (execute a
   batch, react to terminal responses) and how much of it there is
   (capacity).  This replaces the loose [~executor] / [?feedback]
   labelled arguments Server.run used to take — the single-node server
   and the fleet router now drive heterogeneous nodes through the same
   typed record.

   [execute] is the node's real work: compile + cycle-simulate the
   batch's workload (usually through Exec.Result_cache) and return its
   service time in virtual seconds.  It runs on pool workers, so it
   must not touch node-local mutable state.  Raising [Transient]
   signals a retryable hiccup (the scheduler re-runs the batch in
   place, up to [capacity.max_attempts] total attempts); any other
   exception fails the batch permanently.

   [on_terminal] fires for every terminal response of a request this
   node owned and returns follow-up requests to inject — closed-loop
   clients use it to model think time.  The follow-ups go back to
   whoever is routing (the single-node driver's pending list, or the
   fleet router), not straight into this node's queue. *)

module Error = Cinnamon_util.Error

exception Transient of string

type capacity = {
  workers : int; (* simulated parallel executors *)
  queue_capacity : int;
  max_batch : int; (* also capped per-batch by the ring's slot count *)
  max_attempts : int; (* total executor attempts per batch *)
  drain_after_s : float option; (* close admission at this virtual time *)
}

let default_capacity =
  { workers = 2; queue_capacity = 64; max_batch = 8; max_attempts = 3; drain_after_s = None }

type t = {
  name : string;
  execute : now_s:float -> Batcher.batch -> float;
  on_terminal : Response.t -> Request.t list;
  capacity : capacity;
}

let validate_capacity c =
  if c.workers < 1 then Error.fail Error.Invalid_input "Node: workers must be >= 1";
  if c.queue_capacity < 1 then Error.fail Error.Invalid_input "Node: queue_capacity must be >= 1";
  if c.max_batch < 1 then Error.fail Error.Invalid_input "Node: max_batch must be >= 1";
  if c.max_attempts < 1 then Error.fail Error.Invalid_input "Node: max_attempts must be >= 1"

let make ?(name = "node") ?(on_terminal = fun _ -> []) ?(capacity = default_capacity) ~execute () =
  validate_capacity capacity;
  { name; execute; on_terminal; capacity }
