(* Load generation against the virtual-time server.

   Two client models:
   - Open loop: Poisson arrivals at a rate derived from the measured
     service time of the request mix — [overload] = offered load as a
     multiple of the server's aggregate service capacity, so
     overload > 1 provokes queueing, shedding and backpressure
     regardless of how fast the simulator happens to be for the
     chosen workloads.
   - Closed loop: [clients] concurrent clients, each issuing its next
     request one think time after its previous request reaches a
     terminal state (via the server's feedback hook).

   The generator self-calibrates: before the run it executes each
   workload class once (through the Result_cache, which also pre-warms
   the compile the serving run will hit) and uses the measured
   simulated seconds as that class's base service time for rate and
   deadline scaling.  This keeps quick-mode presets meaningful even as
   the simulator's timing model evolves. *)

module CC = Cinnamon_compiler.Compile_config
module Error = Cinnamon_util.Error
module Rng = Cinnamon_util.Rng
module Json = Cinnamon_util.Json
module Exec = Cinnamon_exec
module Runner = Cinnamon_workloads.Runner
module Specs = Cinnamon_workloads.Specs

type class_spec = { cls_bench : string; cls_system : string; cls_weight : float }

type mode =
  | Open_loop of { overload : float }
  | Closed_loop of { clients : int; think_factor : float }

type config = {
  lg_mode : mode;
  lg_requests : int;
  lg_mix : class_spec list;
  lg_seed : int;
  lg_deadline_factor : float; (* deadline = arrival + factor * class service *)
  lg_capacity : Node.capacity;
  lg_compile : CC.t;
  lg_jobs : int; (* real pool workers; 0 = recommended *)
}

let quick =
  {
    lg_mode = Open_loop { overload = 4.0 };
    lg_requests = 80;
    lg_mix = [ { cls_bench = "bootstrap"; cls_system = "cinnamon-4"; cls_weight = 1.0 } ];
    lg_seed = 42;
    lg_deadline_factor = 3.0;
    lg_capacity =
      { Node.workers = 2; queue_capacity = 12; max_batch = 4; max_attempts = 3; drain_after_s = None };
    lg_compile = CC.paper ();
    lg_jobs = 0;
  }

let default =
  {
    quick with
    lg_requests = 300;
    lg_mix =
      [
        { cls_bench = "bootstrap"; cls_system = "cinnamon-4"; cls_weight = 0.7 };
        { cls_bench = "resnet"; cls_system = "cinnamon-4"; cls_weight = 0.3 };
      ];
  }

type result = {
  lr_mode : string; (* "open_loop" | "closed_loop" *)
  lr_rate_rps : float; (* offered rate (open loop) or clients/think-derived *)
  lr_base_service : (string * float) list; (* "bench@system" -> calibrated s *)
  lr_report : Slo.report;
}

let mode_name = function Open_loop _ -> "open_loop" | Closed_loop _ -> "closed_loop"

(* Resolve a class to registry entries, failing fast with the
   registry's own unknown-name message. *)
let resolve_class cls =
  let bench =
    match Specs.find_benchmark cls.cls_bench with
    | Ok b -> b
    | Error msg -> Error.fail Error.Unknown_name ("Loadgen: " ^ msg)
  in
  let sys =
    match Runner.find_system cls.cls_system with
    | Ok s -> s
    | Error msg -> Error.fail Error.Unknown_name ("Loadgen: " ^ msg)
  in
  (cls, bench, sys)

(* The production executor: resolve the batch's workload and charge the
   batch one benchmark run.  All requests in a batch share bench,
   system and config (the batcher's compatibility key), so one compile
   + simulation serves the whole batch — that is the amortization the
   serving layer exists to exploit. *)
let workload_executor ~now_s:_ (b : Batcher.batch) =
  match b.Batcher.requests with
  | [] -> 0.0
  | r :: _ ->
    let bench =
      match Specs.find_benchmark r.Request.req_bench with
      | Ok x -> x
      | Error msg -> Error.fail Error.Unknown_name msg
    in
    let sys =
      match Runner.find_system r.Request.req_system with
      | Ok x -> x
      | Error msg -> Error.fail Error.Unknown_name msg
    in
    (Runner.run_benchmark ~config:r.Request.req_config sys bench).Runner.br_seconds

(* Calibrate: one real run per class gives its base service time and
   pre-warms the compile cache the serving run will hit. *)
let calibrate ~pool ~compile mix =
  let classes = List.map resolve_class mix in
  Exec.Pool.map pool
    (fun (cls, bench, sys) ->
      let r = Runner.run_benchmark ~config:compile sys bench in
      (cls, r.Runner.br_seconds))
    classes

let run cfg =
  if cfg.lg_requests < 1 then Error.fail Error.Invalid_input "Loadgen.run: lg_requests must be >= 1";
  if cfg.lg_mix = [] then Error.fail Error.Invalid_input "Loadgen.run: lg_mix must be non-empty";
  if cfg.lg_deadline_factor <= 0.0 then
    Error.fail Error.Invalid_input "Loadgen.run: lg_deadline_factor must be > 0";
  List.iter
    (fun c ->
      if c.cls_weight <= 0.0 || Float.is_nan c.cls_weight then
        Error.fail Error.Invalid_input "Loadgen.run: class weights must be > 0")
    cfg.lg_mix;
  (match cfg.lg_mode with
  | Open_loop { overload } ->
    if overload <= 0.0 then Error.fail Error.Invalid_input "Loadgen.run: overload must be > 0"
  | Closed_loop { clients; think_factor } ->
    if clients < 1 then Error.fail Error.Invalid_input "Loadgen.run: clients must be >= 1";
    if think_factor < 0.0 then Error.fail Error.Invalid_input "Loadgen.run: think_factor must be >= 0");
  let pool = Exec.Pool.create ~jobs:cfg.lg_jobs () in
  Fun.protect ~finally:(fun () -> Exec.Pool.shutdown pool) @@ fun () ->
  let stats0 = Exec.Result_cache.stats () in
  let calibrated = calibrate ~pool ~compile:cfg.lg_compile cfg.lg_mix in
  let total_weight = List.fold_left (fun acc (c, _) -> acc +. c.cls_weight) 0.0 calibrated in
  let mean_service =
    List.fold_left (fun acc (c, s) -> acc +. (c.cls_weight /. total_weight *. s)) 0.0 calibrated
  in
  let rng = Rng.create ~seed:cfg.lg_seed in
  let pick_class () =
    let u = Rng.float rng *. total_weight in
    let rec go acc = function
      | [] -> List.hd calibrated (* unreachable: weights sum to total *)
      | (c, s) :: rest -> if acc +. c.cls_weight >= u then (c, s) else go (acc +. c.cls_weight) rest
    in
    go 0.0 calibrated
  in
  let pick_priority () =
    let u = Rng.float rng in
    if u < 0.1 then Request.High else if u < 0.9 then Request.Normal else Request.Low
  in
  let mk_request ~id ~arrival_s =
    let cls, service_s = pick_class () in
    Request.make ~config:cfg.lg_compile
      ~priority:(pick_priority ())
      ~deadline_s:(arrival_s +. (cfg.lg_deadline_factor *. service_s))
      ~id ~bench:cls.cls_bench ~system:cls.cls_system ~arrival_s ()
  in
  let offered_rate, arrivals, feedback =
    match cfg.lg_mode with
    | Open_loop { overload } ->
      (* rate such that offered work = overload x server capacity *)
      let rate = overload *. Float.of_int cfg.lg_capacity.Node.workers /. mean_service in
      let t = ref 0.0 in
      let arrivals =
        List.init cfg.lg_requests (fun id ->
            let r = mk_request ~id ~arrival_s:!t in
            t := !t +. (-.log (1.0 -. Rng.float rng) /. rate);
            r)
      in
      (rate, arrivals, None)
    | Closed_loop { clients; think_factor } ->
      let think = think_factor *. mean_service in
      let issued = ref 0 in
      let next_id () =
        let id = !issued in
        incr issued;
        id
      in
      let initial =
        List.init (min clients cfg.lg_requests) (fun _ ->
            mk_request ~id:(next_id ()) ~arrival_s:0.0)
      in
      let feedback (resp : Response.t) =
        if !issued >= cfg.lg_requests then []
        else
          [ mk_request ~id:(next_id ()) ~arrival_s:(Response.terminal_s resp +. think) ]
      in
      (* nominal per-client rate, for the report only *)
      let rate = Float.of_int clients /. (mean_service +. think) in
      (rate, initial, Some feedback)
  in
  (* Loadgen implements the Node interface: the real workload executor
     plus (for closed loops) the think-time feedback hook. *)
  let node =
    Node.make ~name:"loadgen" ?on_terminal:feedback ~capacity:cfg.lg_capacity
      ~execute:workload_executor ()
  in
  let server_result = Server.run ~pool node ~arrivals () in
  let stats1 = Exec.Result_cache.stats () in
  let report =
    Slo.report server_result.Server.slo
      ~duration_s:(Float.max server_result.Server.makespan_s 1e-9)
      ~compiles:(stats1.Exec.Result_cache.misses - stats0.Exec.Result_cache.misses)
      ~cache_hits:
        (stats1.Exec.Result_cache.hits + stats1.Exec.Result_cache.disk_hits
        - stats0.Exec.Result_cache.hits - stats0.Exec.Result_cache.disk_hits)
  in
  {
    lr_mode = mode_name cfg.lg_mode;
    lr_rate_rps = offered_rate;
    lr_base_service =
      List.map (fun (c, s) -> (Printf.sprintf "%s@%s" c.cls_bench c.cls_system, s)) calibrated;
    lr_report = report;
  }

let result_json r =
  Json.Obj
    [
      ("mode", Json.Str r.lr_mode);
      ("offered_rate_rps", Json.Float r.lr_rate_rps);
      ("base_service_s", Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) r.lr_base_service));
      ("slo", Slo.report_json r.lr_report);
    ]

let print_result r =
  Printf.printf "mode: %s, offered rate %.2f req/s\n" r.lr_mode r.lr_rate_rps;
  List.iter
    (fun (k, v) -> Printf.printf "base service %-28s %.4f s\n" k v)
    r.lr_base_service;
  Slo.print r.lr_report

(* Merge this run's result into BENCH_cinnamon.json under
   ["serve_loadtest"][mode], preserving every other key in the file
   (the bench harness owns the rest of the schema). *)
let write_section ~file r =
  let existing =
    if Sys.file_exists file then
      try
        let ic = open_in_bin file in
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        match Json.of_string s with Ok (Json.Obj kvs) -> kvs | _ -> []
      with _ -> []
    else []
  in
  let existing =
    if List.mem_assoc "schema" existing then existing
    else ("schema", Json.Str "cinnamon-bench-v1") :: existing
  in
  let section =
    match List.assoc_opt "serve_loadtest" existing with
    | Some (Json.Obj kvs) -> kvs
    | _ -> []
  in
  let section = (r.lr_mode, result_json r) :: List.remove_assoc r.lr_mode section in
  let merged =
    ("serve_loadtest", Json.Obj section) :: List.remove_assoc "serve_loadtest" existing
  in
  (* keep original key order where possible: schema first *)
  let merged =
    match List.assoc_opt "schema" merged with
    | Some s -> ("schema", s) :: List.remove_assoc "schema" merged
    | None -> merged
  in
  let oc = open_out file in
  output_string oc (Json.to_string (Json.Obj merged));
  output_char oc '\n';
  close_out oc
