(* Bounded admission queue with typed rejection.

   The queue is kept sorted in dispatch order (priority class, then
   FIFO), so the batcher's head-of-line choice is O(1) and admission is
   O(depth) — fine at serving-simulator scale, where depth is bounded
   by [capacity].  Every way a request can fail to be served from here
   is a value ([error] on admission, the [shed_expired] return for
   queued requests whose deadline passed): nothing is silently
   dropped. *)

type error =
  | Queue_full of { capacity : int }
  | Expired of { deadline_s : float; now_s : float }
  | Closed
  | Fleet_full of { nodes : int }
  | Tenant_unavailable of { tenant : Cinnamon_tenant.Tenant_id.t; reason : string }

let error_to_string = function
  | Queue_full { capacity } -> Printf.sprintf "queue full (capacity %d)" capacity
  | Expired { deadline_s; now_s } ->
    Printf.sprintf "deadline %.6fs already expired at admission (now %.6fs)" deadline_s now_s
  | Closed -> "server draining: admission closed"
  | Fleet_full { nodes } ->
    Printf.sprintf "fleet backpressure: all %d nodes at capacity" nodes
  | Tenant_unavailable { tenant; reason } ->
    Printf.sprintf "tenant %s unavailable: %s" (Cinnamon_tenant.Tenant_id.to_string tenant) reason

type t = {
  capacity : int;
  mutable items : Request.t list; (* sorted by Request.compare_order *)
  mutable closed : bool;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Admission.create: capacity must be >= 1";
  { capacity; items = []; closed = false }

let capacity t = t.capacity
let depth t = List.length t.items
let is_empty t = t.items = []
let close t = t.closed <- true
let is_closed t = t.closed

let admit t ~now_s (r : Request.t) =
  if t.closed then Error Closed
  else if Request.expired r ~now_s then
    Error (Expired { deadline_s = r.Request.req_deadline_s; now_s })
  else if depth t >= t.capacity then Error (Queue_full { capacity = t.capacity })
  else begin
    let rec ins = function
      | [] -> [ r ]
      | x :: rest as l -> if Request.compare_order r x < 0 then r :: l else x :: ins rest
    in
    t.items <- ins t.items;
    Ok ()
  end

let shed_expired t ~now_s =
  let expired, keep = List.partition (fun r -> Request.expired r ~now_s) t.items in
  t.items <- keep;
  expired

let peek t = match t.items with [] -> None | r :: _ -> Some r

(* Remove (in queue order) up to [limit] requests satisfying [pred]. *)
let take t pred ~limit =
  if limit < 1 then []
  else begin
    let taken = ref 0 in
    let keep, out =
      List.fold_left
        (fun (keep, out) r ->
          if !taken < limit && pred r then begin
            incr taken;
            (keep, r :: out)
          end
          else (r :: keep, out))
        ([], []) t.items
    in
    t.items <- List.rev keep;
    List.rev out
  end
