(** Terminal outcome of a request.  Every request offered to the
    server yields exactly one response; rejection and deadline shedding
    are typed outcomes, never silent drops. *)

type outcome =
  | Completed of {
      started_s : float;  (** batch dispatch time *)
      finished_s : float;
      attempts : int;  (** 1 = succeeded first try *)
      batch_id : int;
      batch_size : int;
    }
  | Rejected of Admission.error
  | Shed of { deadline_s : float; shed_s : float }
      (** deadline expired while queued *)
  | Failed of { attempts : int; failed_s : float; reason : string }
      (** execution failed permanently (retries exhausted or
          non-transient error) *)

type t = { req : Request.t; outcome : outcome }

val outcome_name : outcome -> string

(** Arrival-to-finish latency; [None] unless completed. *)
val latency_s : t -> float option

(** Completed at or before the deadline. *)
val met_deadline : t -> bool

(** Virtual time the outcome became known (finish, shed, failure, or
    arrival time for admission rejections). *)
val terminal_s : t -> float
