(** The multi-node serving driver: one discrete-event loop over the
    shared virtual clock stepping N {!Cinnamon_serve.Engine}s, with a
    {!Router} placing admissions, per-node {!Key_cache}s modeling
    HBM-resident key sets, and an optional {!Autoscaler}.

    All decisions (routing, batching, key penalties, scaling) are
    sequential on the virtual clock; only the real compile/simulate
    work fans across the shared pool — results are bit-identical for
    any [--jobs].  Every arrival reaches exactly one terminal
    response: per-node outcomes land in that node's SLO accumulator,
    fleet-wide backpressure ([Admission.Fleet_full]) in a router-level
    one, and [fr_slo] is their {!Cinnamon_serve.Slo.merge}. *)

(** Multi-tenant serving mode: the fleet owns one {!Cinnamon_tenant.Store}
    (tenants provision lazily on first arrival), stamps every admitted
    request with the epoch its key lease bound, weighs the per-node
    {!Key_cache}s by modeled key-set bytes, and charges cold dispatches
    the HBM load of the bytes streamed in.  [tn_transcipher_s] adds the
    calibrated ingress cost of the [K_transcipher] conversion circuit
    per request; [tn_upload] records the client-upload bytes that
    symmetric ingress saves versus direct CKKS upload. *)
type tenancy = {
  tn_store : Cinnamon_tenant.Store.config;
  tn_key_capacity_bytes : int;  (** per-node HBM key budget, >= 1 *)
  tn_key_load_s_per_gb : float;  (** HBM load penalty per GB streamed in *)
  tn_transcipher_s : float;  (** ingress service per request; 0 = disabled *)
  tn_upload : Cinnamon_tenant.Transcipher.upload;
}

type config = {
  fc_nodes : int;  (** initial fleet size, >= 1 *)
  fc_policy : Router.policy;
  fc_key_slots : int;  (** per-node warm-key cache capacity, >= 1 *)
  fc_key_load_s : float;
      (** modeled HBM key-load penalty added to a batch's service time
          when its compatibility key is cold on the serving node *)
  fc_autoscale : Autoscaler.config option;
  fc_collect_responses : bool;
      (** retain terminal responses (tests only; O(requests) memory) *)
  fc_tenancy : tenancy option;  (** [None] = single-tenant legacy mode *)
}

(** 4 nodes, least-loaded, 1 key slot, no key penalty, no autoscaler,
    responses not retained, no tenancy. *)
val default_config : config

(** Per-run tenant accounting, accumulated sequentially on the virtual
    clock (never from pool workers). *)
type tenant_result = {
  tr_store : Cinnamon_tenant.Store.stats;
  tr_key_penalty_s : float;  (** summed modeled HBM key-load seconds *)
  tr_transcipher_s : float;  (** summed transciphering ingress seconds *)
  tr_base_service_s : float;  (** summed batch service seconds, no penalties *)
  tr_key_bytes_loaded : int;  (** HBM key traffic across all nodes ever *)
  tr_upload_sym_bytes : float;  (** client bytes actually uploaded *)
  tr_upload_ckks_bytes : float;  (** counterfactual direct-CKKS upload *)
  tr_cold_start_ms : (int * float) list;
      (** tenant id -> its first completion's latency, ms; sorted by id *)
  tr_events : Cinnamon_tenant.Store.event list;  (** oldest first *)
}

type result = {
  fr_slo : Cinnamon_serve.Slo.t;  (** merged: router + every node ever *)
  fr_makespan_s : float;
  fr_router : (string * int) list;  (** router decision counts *)
  fr_key_hits : int;
  fr_key_misses : int;
  fr_events : Autoscaler.event list;  (** oldest first *)
  fr_nodes_peak : int;
  fr_nodes_final : int;  (** active (non-draining) nodes at the end *)
  fr_responses : Cinnamon_serve.Response.t list;
      (** [] unless [fc_collect_responses] *)
  fr_tenants : tenant_result option;  (** [Some] iff [fc_tenancy] *)
}

(** Dispatched-batch warm-key hit rate; 0 when nothing dispatched. *)
val key_hit_rate : result -> float

(** [run config ~make_node ~arrivals ()] plays the arrival list to
    completion.  [make_node id] builds node [id] — initial nodes get
    ids [0 .. fc_nodes-1]; the autoscaler calls it for each scale-up,
    and scale-down gracefully drains the newest active node.  Raises
    typed [Invalid_input] errors on bad counts/penalties and validates
    the autoscaler config up front. *)
val run :
  ?pool:Cinnamon_exec.Pool.t ->
  config ->
  make_node:(int -> Cinnamon_serve.Node.t) ->
  arrivals:Cinnamon_serve.Request.t list ->
  unit ->
  result
