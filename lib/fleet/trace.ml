(* Arrival-trace generation for fleet sweeps.

   Two shapes on the virtual clock:
   - Poisson: stationary arrivals at a fixed rate — the classic
     open-loop overload probe.
   - Diurnal: a non-homogeneous Poisson process whose rate swings
     smoothly between a night-time base and a mid-period peak,
     rate(t) = base + (peak - base) * (1 - cos 2πt/T) / 2, sampled by
     thinning a homogeneous peak-rate process.  This is the trace that
     gives an autoscaler something to do: the fleet should breathe
     with the wave.

   Class mix, priorities and deadlines follow the Loadgen conventions
   (weight-proportional mix; 10/80/10 High/Normal/Low; deadline =
   arrival + factor x the class's calibrated base service time), so
   single-node and fleet runs stress the same workload population. *)

module Rng = Cinnamon_util.Rng
module Error = Cinnamon_util.Error
module Request = Cinnamon_serve.Request
module Loadgen = Cinnamon_serve.Loadgen

type shape =
  | Poisson of { rate_rps : float }
  | Diurnal of { base_rps : float; peak_rps : float; period_s : float }

let shape_name = function Poisson _ -> "poisson" | Diurnal _ -> "diurnal"

type config = {
  tr_shape : shape;
  tr_requests : int;
  tr_seed : int;
  tr_deadline_factor : float; (* deadline = arrival + factor * class service *)
  tr_compile : Cinnamon_compiler.Compile_config.t;
  tr_tenants : int; (* <= 1: single default tenant (legacy traces) *)
  tr_tenant_skew : float; (* zipf exponent of the tenant popularity curve *)
}

let validate cfg =
  if cfg.tr_requests < 1 then Error.fail Error.Invalid_input "Trace: requests must be >= 1";
  if cfg.tr_deadline_factor <= 0.0 then
    Error.fail Error.Invalid_input "Trace: deadline_factor must be > 0";
  if cfg.tr_tenants < 0 then Error.fail Error.Invalid_input "Trace: tenants must be >= 0";
  if cfg.tr_tenant_skew < 0.0 || Float.is_nan cfg.tr_tenant_skew then
    Error.fail Error.Invalid_input "Trace: tenant skew must be >= 0";
  match cfg.tr_shape with
  | Poisson { rate_rps } ->
    if rate_rps <= 0.0 then Error.fail Error.Invalid_input "Trace: rate must be > 0"
  | Diurnal { base_rps; peak_rps; period_s } ->
    if base_rps <= 0.0 then Error.fail Error.Invalid_input "Trace: base rate must be > 0";
    if peak_rps < base_rps then Error.fail Error.Invalid_input "Trace: peak rate must be >= base";
    if period_s <= 0.0 then Error.fail Error.Invalid_input "Trace: period must be > 0"

let generate cfg ~classes =
  validate cfg;
  if classes = [] then Error.fail Error.Invalid_input "Trace: class mix must be non-empty";
  let total_weight =
    List.fold_left (fun acc ((c : Loadgen.class_spec), _) -> acc +. c.Loadgen.cls_weight) 0.0 classes
  in
  let rng = Rng.create ~seed:cfg.tr_seed in
  let pick_class () =
    let u = Rng.float rng *. total_weight in
    let rec go acc = function
      | [] -> List.hd classes (* unreachable: weights sum to total *)
      | ((c : Loadgen.class_spec), s) :: rest ->
        if acc +. c.Loadgen.cls_weight >= u then (c, s) else go (acc +. c.Loadgen.cls_weight) rest
    in
    go 0.0 classes
  in
  let pick_priority () =
    let u = Rng.float rng in
    if u < 0.1 then Request.High else if u < 0.9 then Request.Normal else Request.Low
  in
  let exp_gap rate = -.log (1.0 -. Rng.float rng) /. rate in
  let next_arrival =
    match cfg.tr_shape with
    | Poisson { rate_rps } -> fun t -> t +. exp_gap rate_rps
    | Diurnal { base_rps; peak_rps; period_s } ->
      let rate_at t =
        base_rps +. ((peak_rps -. base_rps) *. 0.5 *. (1.0 -. cos (2.0 *. Float.pi *. t /. period_s)))
      in
      (* thinning: candidates at the peak rate, accepted w.p. rate/peak *)
      let rec thin t =
        let t' = t +. exp_gap peak_rps in
        if Rng.float rng *. peak_rps <= rate_at t' then t' else thin t'
      in
      thin
  in
  (* Tenant popularity: zipf-like weights 1/(i+1)^skew, CDF-sampled.
     With <= 1 tenant no randomness is drawn at all, so legacy
     single-tenant traces are byte-identical to pre-tenancy ones. *)
  let pick_tenant =
    if cfg.tr_tenants <= 1 then fun () -> Cinnamon_tenant.Tenant_id.default
    else begin
      let w =
        Array.init cfg.tr_tenants (fun i ->
            1.0 /. Float.pow (Float.of_int (i + 1)) cfg.tr_tenant_skew)
      in
      let total = Array.fold_left ( +. ) 0.0 w in
      fun () ->
        let u = Rng.float rng *. total in
        let rec go acc i =
          if i >= cfg.tr_tenants - 1 then i
          else if acc +. w.(i) >= u then i
          else go (acc +. w.(i)) (i + 1)
        in
        Cinnamon_tenant.Tenant_id.make (go 0.0 0)
    end
  in
  let t = ref 0.0 in
  List.init cfg.tr_requests (fun id ->
      let arrival_s = !t in
      let cls, service_s = pick_class () in
      t := next_arrival !t;
      (* draw order (class, gap, priority, tenant) is part of the trace
         contract: the tenant draw comes last so single-tenant traces
         reproduce the pre-tenancy streams exactly *)
      let priority = pick_priority () in
      let tenant = pick_tenant () in
      Request.make ~config:cfg.tr_compile ~priority
        ~deadline_s:(arrival_s +. (cfg.tr_deadline_factor *. service_s))
        ~tenant ~id ~bench:cls.Loadgen.cls_bench ~system:cls.Loadgen.cls_system ~arrival_s ())
