(** The multi-tenant serving benchmark: one fleet, a zipf tenant
    population with per-tenant key sets rotating mid-trace, and a
    transciphering ingress priced from the real compiled
    [K_transcipher] circuit.  Every routing policy replays the same
    trace, so the per-policy numbers isolate what tenant-key locality
    buys.  Results merge into [BENCH_cinnamon.json] under
    ["tenant_serving"]. *)

module CC = Cinnamon_compiler.Compile_config

type config = {
  tb_nodes : int;
  tb_tenants : int;  (** >= 2; population behind the zipf curve *)
  tb_requests : int;
  tb_mix : Cinnamon_serve.Loadgen.class_spec list;
  tb_seed : int;
  tb_overload : float;  (** offered load as a multiple of fleet capacity *)
  tb_deadline_factor : float;
  tb_tenant_skew : float;  (** zipf exponent of tenant popularity *)
  tb_capacity : Cinnamon_serve.Node.capacity;
  tb_rotations : int list;  (** rotation amounts in every tenant's key set *)
  tb_conjugation : bool;
  tb_key_capacity_sets : float;
      (** per-node HBM key budget, in key-set multiples *)
  tb_key_load_factor : float;
      (** fully cold key-set load = factor x mean calibrated service *)
  tb_rotation_periods : float;
      (** rotations per estimated trace duration (rotate mid-trace) *)
  tb_compile : CC.t;
  tb_jobs : int;  (** real pool workers; 0 = recommended *)
}

(** bootstrap/resnet/helr on cinnamon-4. *)
val standard_mix : Cinnamon_serve.Loadgen.class_spec list

(** 64 tenants over 4 nodes, 600 requests — the CI preset. *)
val quick : config

(** 256 tenants, 20k requests. *)
val full : config

type point = {
  tp_policy : string;
  tp_report : Cinnamon_serve.Slo.report;
  tp_key_hit_rate : float;  (** dispatched-batch tenant-key hit rate *)
  tp_key_penalty_share : float;  (** key-load s / total charged service s *)
  tp_transcipher_pct : float;  (** ingress s as %% of base service s *)
  tp_cold_p99_ms : float;
      (** p99 over per-tenant first-completion latencies *)
  tp_rotations_started : int;
  tp_rotations_completed : int;
  tp_key_gb_loaded : float;  (** HBM key traffic across all nodes *)
  tp_router : (string * int) list;
}

type result = {
  tbr_points : point list;  (** round_robin, least_loaded, locality *)
  tbr_nodes : int;
  tbr_tenants : int;
  tbr_requests : int;
  tbr_jobs : int;
  tbr_rotation_period_s : float;
  tbr_transcipher_s : float;  (** calibrated ingress seconds per request *)
  tbr_key_set_gb : float;  (** one tenant-epoch key set *)
  tbr_upload : Cinnamon_tenant.Transcipher.upload;
  tbr_locality_gain : float;
      (** locality hit rate minus round-robin hit rate *)
}

(** Raises typed [Invalid_input] errors on bad counts or factors. *)
val run : config -> result

val result_json : result -> Cinnamon_util.Json.t
val print_result : result -> unit

(** Merge into [file] under ["tenant_serving"], preserving other keys. *)
val write_section : file:string -> result -> unit
