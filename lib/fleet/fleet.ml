(* The multi-node serving driver: one discrete-event loop over the
   shared virtual clock stepping N per-node Engines, with a Router
   deciding admission placement, per-node warm-key caches modeling
   HBM-resident evaluation/rotation key sets, and an optional
   Autoscaler growing/shrinking the fleet from live SLO signals.

   Determinism.  Every decision that shapes the run — routing, batch
   formation, key-cache penalties, autoscaling — happens sequentially
   on the virtual clock, in node-id order.  The only concurrency is
   the real compile/simulate work: at each virtual instant, the
   batches formed on ALL nodes are fanned across one shared
   Exec.Pool in a single order-preserving map (Engine.execute touches
   no engine state), then committed back in formation order.  So fleet
   results are bit-identical for any --jobs, the same property the
   single-node server and Runner.run_sweep have.

   Accounting.  Each engine's Slo accumulator absorbs everything that
   happens to requests it owns; requests no node could take (router
   found every queue full) are Rejected with the typed
   Admission.Fleet_full error against a router-level accumulator.
   [Slo.merge] over router + every node ever spawned restores the
   exactly-one-terminal-response identity fleet-wide.

   Scaling.  Scale-up spawns [make_node id] and routes to it from the
   next arrival on (its key cache starts cold).  Scale-down drains the
   newest active node: admission closes immediately (the router stops
   seeing it), admitted work runs to completion, and the empty shell
   is dropped from stepping once drained. *)

module Tel = Cinnamon_telemetry.Telemetry
module Exec = Cinnamon_exec
module Error = Cinnamon_util.Error
module Engine = Cinnamon_serve.Engine
module Node = Cinnamon_serve.Node
module Request = Cinnamon_serve.Request
module Response = Cinnamon_serve.Response
module Admission = Cinnamon_serve.Admission
module Batcher = Cinnamon_serve.Batcher
module Slo = Cinnamon_serve.Slo
module Store = Cinnamon_tenant.Store
module Key_set = Cinnamon_tenant.Key_set
module Tenant_id = Cinnamon_tenant.Tenant_id
module Transcipher = Cinnamon_tenant.Transcipher

(* Multi-tenant serving: the fleet owns one tenant key store (lazily
   provisioning tenants on their first arrival), stamps each admitted
   request with the epoch its lease bound, weighs the per-node key
   caches by modeled key-set bytes, and charges cold dispatches the
   HBM load of the bytes they stream in.  The transciphering ingress
   adds [tn_transcipher_s] per request of a dispatched batch — the
   calibrated cost of the K_transcipher conversion circuit that turns
   the client's symmetric upload into a CKKS ciphertext — and the
   upload model records the bytes that ingress saves. *)
type tenancy = {
  tn_store : Store.config;
  tn_key_capacity_bytes : int; (* per-node HBM key budget *)
  tn_key_load_s_per_gb : float; (* HBM load penalty per GB streamed in *)
  tn_transcipher_s : float; (* ingress service per request; 0 = disabled *)
  tn_upload : Transcipher.upload; (* client-upload byte model *)
}

type config = {
  fc_nodes : int; (* initial fleet size *)
  fc_policy : Router.policy;
  fc_key_slots : int; (* per-node warm-key cache capacity (legacy mode) *)
  fc_key_load_s : float; (* modeled HBM key-load penalty on a cold dispatch *)
  fc_autoscale : Autoscaler.config option;
  fc_collect_responses : bool; (* retain terminal responses (tests; O(requests)) *)
  fc_tenancy : tenancy option; (* None = single-tenant legacy behaviour *)
}

let default_config =
  {
    fc_nodes = 4;
    fc_policy = Router.Least_loaded;
    fc_key_slots = 1;
    fc_key_load_s = 0.0;
    fc_autoscale = None;
    fc_collect_responses = false;
    fc_tenancy = None;
  }

(* Per-run tenant accounting, all accumulated sequentially on the
   virtual clock (never from pool workers). *)
type tenant_result = {
  tr_store : Store.stats;
  tr_key_penalty_s : float; (* summed modeled HBM key-load seconds *)
  tr_transcipher_s : float; (* summed ingress seconds *)
  tr_base_service_s : float; (* summed batch service seconds (no penalties) *)
  tr_key_bytes_loaded : int; (* HBM key traffic across all nodes *)
  tr_upload_sym_bytes : float; (* client bytes actually uploaded *)
  tr_upload_ckks_bytes : float; (* counterfactual direct-CKKS upload *)
  tr_cold_start_ms : (int * float) list; (* tenant -> first-completion latency *)
  tr_events : Store.event list; (* rotation starts/completions *)
}

type result = {
  fr_slo : Slo.t; (* merged: router + every node ever spawned *)
  fr_makespan_s : float;
  fr_router : (string * int) list;
  fr_key_hits : int;
  fr_key_misses : int;
  fr_events : Autoscaler.event list;
  fr_nodes_peak : int;
  fr_nodes_final : int;
  fr_responses : Response.t list; (* [] unless fc_collect_responses *)
  fr_tenants : tenant_result option; (* Some iff fc_tenancy *)
}

let key_hit_rate r =
  let total = r.fr_key_hits + r.fr_key_misses in
  if total = 0 then 0.0 else Float.of_int r.fr_key_hits /. Float.of_int total

type fnode = {
  fn_id : int;
  fn_engine : Engine.t;
  fn_keys : Key_cache.t;
  mutable fn_draining : bool;
}

let cmp_arrival (a : Request.t) (b : Request.t) =
  match Float.compare a.Request.req_arrival_s b.Request.req_arrival_s with
  | 0 -> compare a.Request.req_id b.Request.req_id
  | c -> c

let run ?pool config ~make_node ~arrivals () =
  if config.fc_nodes < 1 then Error.fail Error.Invalid_input "Fleet.run: fc_nodes must be >= 1";
  if config.fc_key_slots < 1 then
    Error.fail Error.Invalid_input "Fleet.run: fc_key_slots must be >= 1";
  if config.fc_key_load_s < 0.0 || Float.is_nan config.fc_key_load_s then
    Error.fail Error.Invalid_input "Fleet.run: fc_key_load_s must be >= 0";
  Option.iter
    (fun tn ->
      if tn.tn_key_capacity_bytes < 1 then
        Error.fail Error.Invalid_input "Fleet.run: tenancy key capacity must be >= 1 byte";
      if tn.tn_key_load_s_per_gb < 0.0 || Float.is_nan tn.tn_key_load_s_per_gb then
        Error.fail Error.Invalid_input "Fleet.run: tenancy key-load rate must be >= 0";
      if tn.tn_transcipher_s < 0.0 || Float.is_nan tn.tn_transcipher_s then
        Error.fail Error.Invalid_input "Fleet.run: transcipher service must be >= 0")
    config.fc_tenancy;
  Option.iter Autoscaler.validate config.fc_autoscale;
  Tel.name_process ~pid:Engine.serve_pid "serve (virtual time)";
  let store = Option.map (fun tn -> Store.create tn.tn_store) config.fc_tenancy in
  (* tenant accounting, all mutated sequentially on the virtual clock *)
  let key_penalty_s = ref 0.0 in
  let transcipher_s = ref 0.0 in
  let base_service_s = ref 0.0 in
  let upload_sym = ref 0.0 in
  let upload_ckks = ref 0.0 in
  let cold_start = Hashtbl.create 64 in (* tenant int -> first-completion ms *)
  let store_events = ref [] in
  let pending = ref (List.stable_sort cmp_arrival arrivals) in
  let insert_pending rs =
    if rs <> [] then pending := List.merge cmp_arrival (List.stable_sort cmp_arrival rs) !pending
  in
  let responses = ref [] in
  let record resp = if config.fc_collect_responses then responses := resp :: !responses in
  (* every terminal response funnels through here exactly once: drop
     the request's key lease (its epoch may now finish rotating) and
     log the tenant's first completion for cold-start percentiles *)
  let terminal (resp : Response.t) =
    (match store with
    | Some st -> (
      let r = resp.Response.req in
      match resp.Response.outcome with
      | Response.Rejected (Admission.Tenant_unavailable _) ->
        () (* never leased: the store refused at admission *)
      | _ ->
        Store.release st r.Request.req_tenant r.Request.req_epoch;
        (match Response.latency_s resp with
        | Some l ->
          let tid = Tenant_id.to_int r.Request.req_tenant in
          if not (Hashtbl.mem cold_start tid) then Hashtbl.replace cold_start tid (l *. 1e3)
        | None -> ()))
    | None -> ());
    record resp
  in
  let mk_fnode id =
    let node = make_node id in
    let respond resp =
      terminal resp;
      (* closed-loop follow-ups re-enter through the router *)
      insert_pending (node.Node.on_terminal resp)
    in
    let keys =
      match config.fc_tenancy with
      | None -> Key_cache.create_slots ~slots:config.fc_key_slots
      | Some tn -> Key_cache.create ~capacity_bytes:tn.tn_key_capacity_bytes
    in
    { fn_id = id; fn_engine = Engine.create ~node ~respond; fn_keys = keys; fn_draining = false }
  in
  let next_node_id = ref 0 in
  let spawn () =
    let id = !next_node_id in
    incr next_node_id;
    mk_fnode id
  in
  (* all nodes ever spawned, in id order; draining shells are dropped
     from this list once empty but their SLO accumulators are kept *)
  let nodes = ref (List.init config.fc_nodes (fun _ -> spawn ())) in
  let retired = ref [] in (* drained shells: SLO + key counters still count *)
  let active () = List.filter (fun n -> not n.fn_draining) !nodes in
  let nodes_peak = ref config.fc_nodes in
  let router = Router.create config.fc_policy in
  let router_slo = Slo.create () in
  let scaler = Option.map Autoscaler.create config.fc_autoscale in
  let now = ref 0.0 in
  let next_batch_id = ref 0 in
  let next_eval =
    ref (match config.fc_autoscale with Some c -> c.Autoscaler.as_interval_s | None -> infinity)
  in
  let apply_scaling ev =
    match ev.Autoscaler.ev_action with
    | Autoscaler.Scale_up ->
      nodes := !nodes @ [ spawn () ];
      let n_active = List.length (active ()) in
      if n_active > !nodes_peak then nodes_peak := n_active
    | Autoscaler.Scale_down -> (
      (* drain the newest active node: LIFO keeps ids compact and the
         warm caches of older nodes intact *)
      match List.rev (active ()) with
      | [] -> ()
      | newest :: _ ->
        newest.fn_draining <- true;
        Engine.close newest.fn_engine)
  in
  let tick_autoscaler () =
    match scaler with
    | None -> ()
    | Some sc ->
      while !next_eval <= !now do
        let act = active () in
        let n = List.length act in
        let signals =
          {
            Autoscaler.sg_now_s = !next_eval;
            sg_nodes = n;
            sg_mean_depth =
              (if n = 0 then 0.0
               else
                 Float.of_int
                   (List.fold_left (fun acc fn -> acc + Engine.queue_depth fn.fn_engine) 0 act)
                 /. Float.of_int n);
            sg_p99_ms =
              Slo.live_p99_ms (Slo.merge (List.map (fun fn -> Engine.slo fn.fn_engine) act));
          }
        in
        Option.iter apply_scaling (Autoscaler.decide sc signals);
        next_eval := Autoscaler.next_eval_after sc ~now_s:!next_eval
      done
  in
  let place (r : Request.t) =
    (* routes on tenant-key residency: the candidate's [cd_warm] asks
       the node's cache about this request's (tenant, epoch, program)
       entry, so the locality policy follows tenants to their keys *)
    let entry = Key_cache.entry_of_request r in
    let candidates =
      List.map
        (fun fn ->
          {
            Router.cd_id = fn.fn_id;
            cd_load = Engine.load fn.fn_engine;
            cd_has_room = Engine.has_room fn.fn_engine;
            cd_warm = Key_cache.mem fn.fn_keys entry;
          })
        (active ())
    in
    match Router.pick router candidates with
    | Some id ->
      let fn = List.find (fun fn -> fn.fn_id = id) !nodes in
      Engine.offer fn.fn_engine ~now_s:!now r
    | None ->
      (* global backpressure: typed fleet-level rejection, accounted at
         the router so the merged report keeps every request terminal *)
      Slo.observe_offered router_slo;
      let err = Admission.Fleet_full { nodes = List.length candidates } in
      Slo.observe_rejected router_slo err;
      terminal { Response.req = r; outcome = Response.Rejected err }
  in
  let route (r : Request.t) =
    match store, config.fc_tenancy with
    | None, _ | _, None -> place r
    | Some st, Some tn -> (
      (* tenant admission: provision on first sight, lease the current
         epoch, stamp the request with it.  In-flight work keeps its
         stamped epoch through any rotation that starts later. *)
      let leased =
        match Store.lease st r.Request.req_tenant with
        | Error (Store.Unknown_tenant _) -> (
          match Store.provision st r.Request.req_tenant ~now_s:!now with
          | Ok _ -> Store.lease st r.Request.req_tenant
          | Error e -> Error e)
        | x -> x
      in
      match leased with
      | Error e ->
        (* typed tenant-level rejection, accounted at the router *)
        Slo.observe_offered router_slo;
        let err =
          Admission.Tenant_unavailable
            { tenant = r.Request.req_tenant; reason = Store.error_to_string e }
        in
        Slo.observe_rejected router_slo err;
        terminal { Response.req = r; outcome = Response.Rejected err }
      | Ok ks ->
        upload_sym := !upload_sym +. Float.of_int tn.tn_upload.Transcipher.up_sym_bytes;
        upload_ckks := !upload_ckks +. Float.of_int tn.tn_upload.Transcipher.up_ckks_bytes;
        place (Request.with_epoch r (Key_set.epoch ks)))
  in
  let rec admit_due () =
    match !pending with
    | r :: rest when r.Request.req_arrival_s <= !now ->
      pending := rest;
      route r;
      admit_due ()
    | _ -> ()
  in
  let dispatch () =
    let pairs =
      List.concat_map
        (fun fn ->
          List.map
            (fun b -> (fn, b))
            (Engine.form_batches fn.fn_engine ~now_s:!now ~next_batch_id))
        !nodes
    in
    match pairs with
    | [] -> ()
    | pairs ->
      let t_dispatch = !now in
      (* warm-key penalties are decided sequentially, in formation
         order, BEFORE the parallel fan-out — cache state never races.
         Every request in a batch shares (tenant, epoch, program) by
         the compat key, so the head request names the batch's entry. *)
      let jobs =
        List.map
          (fun (fn, b) ->
            let head = List.hd b.Batcher.requests in
            let entry = Key_cache.entry_of_request head in
            let penalty_s =
              match (store, config.fc_tenancy) with
              | Some st, Some tn ->
                let bytes =
                  match
                    Store.key_set_for st head.Request.req_tenant head.Request.req_epoch
                  with
                  | Ok ks -> Key_set.bytes ks
                  | Error _ -> 0 (* unreachable: the lease pins the epoch *)
                in
                let warm = Key_cache.touch fn.fn_keys entry ~bytes in
                let load =
                  if warm then 0.0 else tn.tn_key_load_s_per_gb *. Float.of_int bytes /. 1e9
                in
                let ingress = tn.tn_transcipher_s *. Float.of_int (Batcher.size b) in
                key_penalty_s := !key_penalty_s +. load;
                transcipher_s := !transcipher_s +. ingress;
                load +. ingress
              | _ ->
                let warm = Key_cache.touch fn.fn_keys entry ~bytes:1 in
                if warm then 0.0 else config.fc_key_load_s
            in
            (fn, b, penalty_s))
          pairs
      in
      let exec (fn, b, _) = Engine.execute fn.fn_engine ~now_s:t_dispatch b in
      let results =
        match pool with Some p -> Exec.Pool.map p exec jobs | None -> List.map exec jobs
      in
      List.iter2
        (fun (fn, b, penalty_s) res ->
          (match res with
          | Ok (service_s, _) -> base_service_s := !base_service_s +. service_s
          | Error _ -> ());
          Engine.commit fn.fn_engine ~now_s:t_dispatch ~extra_service_s:penalty_s b res)
        jobs results
  in
  let reap_drained () =
    let drained, rest =
      List.partition (fun fn -> fn.fn_draining && Engine.is_drained fn.fn_engine) !nodes
    in
    if drained <> [] then begin
      retired := !retired @ drained;
      nodes := rest
    end
  in
  let tick_store () =
    Option.iter
      (fun st ->
        let evs = Store.tick st ~now_s:!now in
        if evs <> [] then store_events := List.rev_append evs !store_events)
      store
  in
  let rec loop () =
    tick_autoscaler ();
    (* rotations due at-or-before [now] start (or, drained, complete)
       before this instant's arrivals lease their epochs *)
    tick_store ();
    admit_due ();
    List.iter (fun fn -> Engine.shed_expired fn.fn_engine ~now_s:!now) !nodes;
    List.iter (fun fn -> Engine.observe_depth fn.fn_engine) (active ());
    dispatch ();
    if List.exists (fun fn -> Engine.wants_dispatch fn.fn_engine) !nodes then loop ()
    else begin
      reap_drained ();
      let next_arrival =
        match !pending with [] -> infinity | r :: _ -> r.Request.req_arrival_s
      in
      let next_completion =
        List.fold_left
          (fun acc fn -> Float.min acc (Engine.next_completion_s fn.fn_engine))
          infinity !nodes
      in
      let next_work = Float.min next_arrival next_completion in
      if next_work < infinity then begin
        now := Float.max !now (Float.min next_work !next_eval);
        List.iter (fun fn -> Engine.complete_due fn.fn_engine ~now_s:!now) !nodes;
        loop ()
      end
      (* else: no arrivals pending, every queue empty, nothing in
         flight — the fleet is drained (pending autoscaler evals are
         moot with no work left) *)
    end
  in
  loop ();
  let everyone = !retired @ !nodes in
  let key_hits = List.fold_left (fun acc fn -> acc + Key_cache.hits fn.fn_keys) 0 everyone
  and key_misses = List.fold_left (fun acc fn -> acc + Key_cache.misses fn.fn_keys) 0 everyone in
  {
    fr_slo = Slo.merge (router_slo :: List.map (fun fn -> Engine.slo fn.fn_engine) everyone);
    fr_makespan_s = !now;
    fr_router = Router.decisions router;
    fr_key_hits = key_hits;
    fr_key_misses = key_misses;
    fr_events = (match scaler with None -> [] | Some sc -> Autoscaler.events sc);
    fr_nodes_peak = !nodes_peak;
    fr_nodes_final = List.length (active ());
    fr_responses = List.rev !responses;
    fr_tenants =
      Option.map
        (fun st ->
          let loaded =
            List.fold_left (fun acc fn -> acc + Key_cache.loaded_bytes fn.fn_keys) 0 everyone
          in
          let cold =
            Hashtbl.fold (fun tid ms acc -> (tid, ms) :: acc) cold_start []
            |> List.sort (fun (a, _) (b, _) -> compare a b)
          in
          {
            tr_store = Store.stats st;
            tr_key_penalty_s = !key_penalty_s;
            tr_transcipher_s = !transcipher_s;
            tr_base_service_s = !base_service_s;
            tr_key_bytes_loaded = loaded;
            tr_upload_sym_bytes = !upload_sym;
            tr_upload_ckks_bytes = !upload_ckks;
            tr_cold_start_ms = cold;
            tr_events = List.rev !store_events;
          })
        store;
  }
