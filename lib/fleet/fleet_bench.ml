(* The serve-fleet benchmark: sweep fleet sizes under Poisson and
   diurnal traces for each routing policy, and demo the autoscaler.

   For a fleet of n nodes the offered rate is [overload] x the fleet's
   aggregate service capacity (n x workers / calibrated mean service
   time), so every sweep point sees the same per-node pressure and the
   scaling-efficiency curve isolates what the router and the warm-key
   caches cost or save:

       efficiency(n) = (goodput(n) / n) / (goodput(n0) / n0)

   with n0 the smallest swept size.  All three policies replay the
   SAME trace at each size (the trace seed depends on shape and size,
   not policy), so per-policy curves are directly comparable.  The
   warm-key HBM-load penalty is [fb_key_load_factor] x mean service —
   tied to the calibrated workload, not wall-clock guesses.

   The autoscaler demo starts one node under the same traces with the
   offered rate sized for half the sweep's largest fleet, and reports
   the scaling events (time, direction, node count, reason).

   Results merge into BENCH_cinnamon.json under ["serve_fleet"],
   preserving every other key in the file. *)

module CC = Cinnamon_compiler.Compile_config
module Error = Cinnamon_util.Error
module Json = Cinnamon_util.Json
module Exec = Cinnamon_exec
module Node = Cinnamon_serve.Node
module Slo = Cinnamon_serve.Slo
module Loadgen = Cinnamon_serve.Loadgen

type config = {
  fb_nodes : int list; (* fleet sizes to sweep, ascending *)
  fb_policies : Router.policy list;
  fb_shapes : [ `Poisson | `Diurnal ] list;
  fb_requests : int; (* per sweep point *)
  fb_mix : Loadgen.class_spec list;
  fb_seed : int;
  fb_overload : float; (* offered load as a multiple of fleet capacity *)
  fb_deadline_factor : float;
  fb_capacity : Node.capacity;
  fb_key_slots : int;
  fb_key_load_factor : float; (* key-load penalty = factor x mean service *)
  fb_autoscale : bool;
  fb_compile : CC.t;
  fb_jobs : int; (* real pool workers; 0 = recommended *)
}

(* A skewed five-class mix: distinct benchmarks mean distinct batch
   compatibility keys, which is what gives locality routing something
   to win on with single-slot key caches. *)
let standard_mix =
  [
    { Loadgen.cls_bench = "bootstrap"; cls_system = "cinnamon-4"; cls_weight = 0.5 };
    { Loadgen.cls_bench = "resnet"; cls_system = "cinnamon-4"; cls_weight = 0.2 };
    { Loadgen.cls_bench = "helr"; cls_system = "cinnamon-4"; cls_weight = 0.15 };
    { Loadgen.cls_bench = "bert"; cls_system = "cinnamon-4"; cls_weight = 0.1 };
    { Loadgen.cls_bench = "bootstrap-21"; cls_system = "cinnamon-4"; cls_weight = 0.05 };
  ]

let quick =
  {
    fb_nodes = [ 1; 2; 4 ];
    fb_policies = Router.all_policies;
    fb_shapes = [ `Poisson; `Diurnal ];
    fb_requests = 600;
    fb_mix = standard_mix;
    fb_seed = 42;
    fb_overload = 1.5;
    fb_deadline_factor = 6.0;
    fb_capacity =
      { Node.workers = 2; queue_capacity = 32; max_batch = 8; max_attempts = 3; drain_after_s = None };
    fb_key_slots = 1;
    fb_key_load_factor = 0.5;
    fb_autoscale = true;
    fb_compile = CC.paper ();
    fb_jobs = 0;
  }

(* The headline sweep: 1 -> 64 nodes under million-request traces. *)
let full = { quick with fb_nodes = [ 1; 2; 4; 8; 16; 32; 64 ]; fb_requests = 1_000_000 }

type point = {
  pt_policy : string;
  pt_shape : string;
  pt_nodes : int;
  pt_report : Slo.report;
  pt_goodput_per_node : float;
  pt_efficiency : float; (* vs the smallest swept size, same policy+shape *)
  pt_key_hit_rate : float;
  pt_router : (string * int) list;
}

type scale_demo = {
  sd_shape : string;
  sd_report : Slo.report;
  sd_events : Autoscaler.event list;
  sd_nodes_peak : int;
  sd_nodes_final : int;
}

type result = {
  fbr_points : point list; (* policy-major, then shape, then nodes *)
  fbr_demos : scale_demo list;
  fbr_base_service : (string * float) list;
  fbr_requests : int;
  fbr_jobs : int;
}

let shape_of_kind ~rate ~requests = function
  | `Poisson -> Trace.Poisson { rate_rps = rate }
  | `Diurnal ->
    (* mean rate = [rate]; three full day/night cycles per trace *)
    let period_s = Float.of_int requests /. rate /. 3.0 in
    Trace.Diurnal { base_rps = 0.4 *. rate; peak_rps = 1.6 *. rate; period_s }

let kind_name = function `Poisson -> "poisson" | `Diurnal -> "diurnal"

let report_of ~fleet_result ~stats0 ~stats1 =
  let open Exec.Result_cache in
  Slo.report fleet_result.Fleet.fr_slo
    ~duration_s:(Float.max fleet_result.Fleet.fr_makespan_s 1e-9)
    ~compiles:(stats1.misses - stats0.misses)
    ~cache_hits:(stats1.hits + stats1.disk_hits - stats0.hits - stats0.disk_hits)

let run cfg =
  if cfg.fb_nodes = [] then Error.fail Error.Invalid_input "Fleet_bench: fb_nodes must be non-empty";
  List.iter
    (fun n -> if n < 1 then Error.fail Error.Invalid_input "Fleet_bench: node counts must be >= 1")
    cfg.fb_nodes;
  if cfg.fb_requests < 1 then Error.fail Error.Invalid_input "Fleet_bench: requests must be >= 1";
  if cfg.fb_overload <= 0.0 then Error.fail Error.Invalid_input "Fleet_bench: overload must be > 0";
  if cfg.fb_key_load_factor < 0.0 then
    Error.fail Error.Invalid_input "Fleet_bench: key_load_factor must be >= 0";
  let pool = Exec.Pool.create ~jobs:cfg.fb_jobs () in
  Fun.protect ~finally:(fun () -> Exec.Pool.shutdown pool) @@ fun () ->
  let calibrated = Loadgen.calibrate ~pool ~compile:cfg.fb_compile cfg.fb_mix in
  let total_weight =
    List.fold_left (fun acc (c, _) -> acc +. c.Loadgen.cls_weight) 0.0 calibrated
  in
  let mean_service =
    List.fold_left (fun acc (c, s) -> acc +. (c.Loadgen.cls_weight /. total_weight *. s)) 0.0 calibrated
  in
  let key_load_s = cfg.fb_key_load_factor *. mean_service in
  let rate_for nodes =
    cfg.fb_overload *. Float.of_int (nodes * cfg.fb_capacity.Node.workers) /. mean_service
  in
  let make_node id =
    Node.make ~name:(Printf.sprintf "node%d" id) ~capacity:cfg.fb_capacity
      ~execute:Loadgen.workload_executor ()
  in
  let shape_idx k = match k with `Poisson -> 1 | `Diurnal -> 2 in
  let trace_for kind nodes =
    let rate = rate_for nodes in
    {
      Trace.tr_shape = shape_of_kind ~rate ~requests:cfg.fb_requests kind;
      tr_requests = cfg.fb_requests;
      (* same trace for every policy at a given (shape, size) *)
      tr_seed = cfg.fb_seed + (1000 * nodes) + shape_idx kind;
      tr_deadline_factor = cfg.fb_deadline_factor;
      tr_compile = cfg.fb_compile;
      tr_tenants = 0;
      tr_tenant_skew = 1.0;
    }
  in
  let run_point policy kind nodes =
    let arrivals = Trace.generate (trace_for kind nodes) ~classes:calibrated in
    let fleet_cfg =
      {
        Fleet.fc_nodes = nodes;
        fc_policy = policy;
        fc_key_slots = cfg.fb_key_slots;
        fc_key_load_s = key_load_s;
        fc_autoscale = None;
        fc_collect_responses = false;
        fc_tenancy = None;
      }
    in
    let stats0 = Exec.Result_cache.stats () in
    let fr = Fleet.run ~pool fleet_cfg ~make_node ~arrivals () in
    let stats1 = Exec.Result_cache.stats () in
    let report = report_of ~fleet_result:fr ~stats0 ~stats1 in
    {
      pt_policy = Router.policy_name policy;
      pt_shape = kind_name kind;
      pt_nodes = nodes;
      pt_report = report;
      pt_goodput_per_node = report.Slo.rp_goodput_rps /. Float.of_int nodes;
      pt_efficiency = 0.0 (* filled against the per-curve baseline below *);
      pt_key_hit_rate = Fleet.key_hit_rate fr;
      pt_router = fr.Fleet.fr_router;
    }
  in
  let points =
    List.concat_map
      (fun policy ->
        List.concat_map
          (fun kind ->
            let curve = List.map (run_point policy kind) cfg.fb_nodes in
            let baseline =
              match curve with [] -> 0.0 | p0 :: _ -> p0.pt_goodput_per_node
            in
            List.map
              (fun p ->
                {
                  p with
                  pt_efficiency =
                    (if baseline > 0.0 then p.pt_goodput_per_node /. baseline else 0.0);
                })
              curve)
          cfg.fb_shapes)
      cfg.fb_policies
  in
  let demos =
    if not cfg.fb_autoscale then []
    else
      List.map
        (fun kind ->
          let max_nodes = List.fold_left max 1 cfg.fb_nodes in
          (* offered load sized for half the largest fleet, starting
             from one node: the scaler has to grow to keep up *)
          let target = max 1 (max_nodes / 2) in
          let arrivals = Trace.generate (trace_for kind target) ~classes:calibrated in
          let fleet_cfg =
            {
              Fleet.fc_nodes = 1;
              fc_policy = Router.Least_loaded;
              fc_key_slots = cfg.fb_key_slots;
              fc_key_load_s = key_load_s;
              fc_autoscale =
                Some { Autoscaler.default with as_min_nodes = 1; as_max_nodes = max_nodes };
              fc_collect_responses = false;
              fc_tenancy = None;
            }
          in
          let stats0 = Exec.Result_cache.stats () in
          let fr = Fleet.run ~pool fleet_cfg ~make_node ~arrivals () in
          let stats1 = Exec.Result_cache.stats () in
          {
            sd_shape = kind_name kind;
            sd_report = report_of ~fleet_result:fr ~stats0 ~stats1;
            sd_events = fr.Fleet.fr_events;
            sd_nodes_peak = fr.Fleet.fr_nodes_peak;
            sd_nodes_final = fr.Fleet.fr_nodes_final;
          })
        cfg.fb_shapes
  in
  {
    fbr_points = points;
    fbr_demos = demos;
    fbr_base_service =
      List.map
        (fun (c, s) -> (Printf.sprintf "%s@%s" c.Loadgen.cls_bench c.Loadgen.cls_system, s))
      calibrated;
    fbr_requests = cfg.fb_requests;
    fbr_jobs = cfg.fb_jobs;
  }

let point_json p =
  Json.Obj
    [
      ("nodes", Json.Int p.pt_nodes);
      ("scaling_efficiency", Json.Float p.pt_efficiency);
      ("goodput_per_node_rps", Json.Float p.pt_goodput_per_node);
      ("key_hit_rate", Json.Float p.pt_key_hit_rate);
      ("router", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) p.pt_router));
      ("slo", Slo.report_json p.pt_report);
    ]

let demo_json d =
  Json.Obj
    [
      ("nodes_peak", Json.Int d.sd_nodes_peak);
      ("nodes_final", Json.Int d.sd_nodes_final);
      ("events", Json.List (List.map Autoscaler.event_json d.sd_events));
      ("slo", Slo.report_json d.sd_report);
    ]

let result_json r =
  (* points grouped policy -> shape -> curve *)
  let policies = List.sort_uniq compare (List.map (fun p -> p.pt_policy) r.fbr_points) in
  let sweeps =
    List.map
      (fun policy ->
        let shapes =
          List.sort_uniq compare
            (List.filter_map
               (fun p -> if p.pt_policy = policy then Some p.pt_shape else None)
               r.fbr_points)
        in
        ( policy,
          Json.Obj
            (List.map
               (fun shape ->
                 ( shape,
                   Json.List
                     (List.filter_map
                        (fun p ->
                          if p.pt_policy = policy && p.pt_shape = shape then Some (point_json p)
                          else None)
                        r.fbr_points) ))
               shapes) ))
      policies
  in
  Json.Obj
    [
      ("requests", Json.Int r.fbr_requests);
      ("jobs", Json.Int r.fbr_jobs);
      ( "base_service_s",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) r.fbr_base_service) );
      ("sweeps", Json.Obj sweeps);
      ("autoscaler", Json.Obj (List.map (fun d -> (d.sd_shape, demo_json d)) r.fbr_demos));
    ]

let fmt_opt_ms = function None -> "-" | Some v -> Printf.sprintf "%.2f" v

let print_result r =
  List.iter
    (fun (k, v) -> Printf.printf "base service %-28s %.4f s\n" k v)
    r.fbr_base_service;
  let header = ref "" in
  List.iter
    (fun p ->
      let h = Printf.sprintf "%s / %s" p.pt_policy p.pt_shape in
      if h <> !header then begin
        header := h;
        Printf.printf "\n-- %s --\n%6s %10s %10s %8s %8s %10s\n" h "nodes" "goodput/s" "p99_ms"
          "eff" "key_hit" "rejected"
      end;
      Printf.printf "%6d %10.2f %10s %8.3f %7.1f%% %10d\n" p.pt_nodes
        p.pt_report.Slo.rp_goodput_rps
        (fmt_opt_ms p.pt_report.Slo.rp_p99_ms)
        p.pt_efficiency (100.0 *. p.pt_key_hit_rate)
        (p.pt_report.Slo.rp_rejected_full + p.pt_report.Slo.rp_rejected_fleet))
    r.fbr_points;
  List.iter
    (fun d ->
      Printf.printf "\n-- autoscaler / %s -- peak %d nodes, final %d\n" d.sd_shape d.sd_nodes_peak
        d.sd_nodes_final;
      List.iter
        (fun (e : Autoscaler.event) ->
          Printf.printf "  t=%8.2fs %-10s %d -> %d (%s)\n" e.Autoscaler.ev_time_s
            (Autoscaler.action_name e.Autoscaler.ev_action)
            e.Autoscaler.ev_nodes_before e.Autoscaler.ev_nodes_after e.Autoscaler.ev_reason)
        d.sd_events)
    r.fbr_demos

(* Merge this run's result into BENCH_cinnamon.json under
   ["serve_fleet"], preserving every other key in the file (the bench
   harness owns the rest of the schema). *)
let write_section ~file r =
  let existing =
    if Sys.file_exists file then
      try
        let ic = open_in_bin file in
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        match Json.of_string s with Ok (Json.Obj kvs) -> kvs | _ -> []
      with _ -> []
    else []
  in
  let existing =
    if List.mem_assoc "schema" existing then existing
    else ("schema", Json.Str "cinnamon-bench-v1") :: existing
  in
  let merged = ("serve_fleet", result_json r) :: List.remove_assoc "serve_fleet" existing in
  let merged =
    match List.assoc_opt "schema" merged with
    | Some s -> ("schema", s) :: List.remove_assoc "schema" merged
    | None -> merged
  in
  let oc = open_out file in
  output_string oc (Json.to_string (Json.Obj merged));
  output_char oc '\n';
  close_out oc
