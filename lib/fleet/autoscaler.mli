(** Autoscaling on the virtual clock, from live SLO signals.

    Pure decision logic with two layers of hysteresis: a deadband
    between the up/down depth thresholds, and a cooldown after any
    action.  The fleet driver calls {!decide} each time the clock
    crosses the evaluation interval and applies the action. *)

type config = {
  as_min_nodes : int;  (** >= 1 *)
  as_max_nodes : int;  (** >= min *)
  as_interval_s : float;  (** evaluation cadence, > 0 *)
  as_cooldown_s : float;  (** hold after any action, >= 0 *)
  as_up_depth : float;  (** grow when mean queue depth per node exceeds this *)
  as_down_depth : float;  (** shrink allowed below this; must be < up *)
  as_up_p99_ms : float option;  (** optional latency trigger for growth *)
}

(** 1..64 nodes, evaluate every 5 virtual s, 15 s cooldown, up at mean
    depth 4, down below 0.5, no latency trigger. *)
val default : config

(** Raises a typed [Invalid_input] error on inconsistent bounds or a
    non-positive deadband. *)
val validate : config -> unit

type signals = {
  sg_now_s : float;
  sg_nodes : int;  (** active (non-draining) nodes *)
  sg_mean_depth : float;  (** mean queue depth per active node *)
  sg_p99_ms : float option;  (** streaming p99; [None] before first completion *)
}

type action = Scale_up | Scale_down

type event = {
  ev_time_s : float;
  ev_action : action;
  ev_nodes_before : int;
  ev_nodes_after : int;
  ev_reason : string;
}

val action_name : action -> string

type t

val create : config -> t
val config : t -> config

(** [Some event] when the signals cross a threshold outside the
    cooldown window (the event is also recorded); [None] to hold.
    Scale-up: depth above [as_up_depth] or p99 above [as_up_p99_ms];
    scale-down: depth below [as_down_depth] AND p99 not above the up
    threshold.  Bounded by [as_min_nodes]/[as_max_nodes]. *)
val decide : t -> signals -> event option

(** All recorded events, oldest first. *)
val events : t -> event list

val next_eval_after : t -> now_s:float -> float
val event_json : event -> Cinnamon_util.Json.t
