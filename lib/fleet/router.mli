(** Request routing across the active nodes of a fleet.

    One immutable candidate snapshot per request in, one node id out
    (or none — global backpressure).  The only state is a round-robin
    cursor and per-decision counters, so routing is deterministic in
    (candidates, arrival order). *)

type policy =
  | Round_robin  (** rotate over nodes with room *)
  | Least_loaded  (** minimum queued + in-flight, ties to lowest id *)
  | Locality
      (** least-loaded among nodes with the request's compatibility
          key warm; spill to least-loaded (paying a modeled HBM key
          load) when no warm node has room *)

val policy_name : policy -> string

(** Accepts long and short spellings ([rr], [ll], [loc]). *)
val policy_of_string : string -> policy option

val all_policies : policy list

type candidate = {
  cd_id : int;
  cd_load : int;  (** queued + in-flight requests *)
  cd_has_room : bool;
  cd_warm : bool;  (** compat key resident in the node's key cache *)
}

type t

val create : policy -> t
val policy : t -> policy

(** Pick a node id from candidates (given in node-id order); [None]
    means every node is at capacity.  Counts the decision. *)
val pick : t -> candidate list -> int option

(** Decision counters, non-zero entries only: [round_robin],
    [least_loaded], [locality_warm], [locality_spill],
    [fleet_full]. *)
val decisions : t -> (string * int) list
