(* Autoscaling on the virtual clock, driven by the live SLO signals
   the serving layer already tracks (queue-depth gauge, streaming p99).

   Pure decision logic: the fleet driver feeds a signal snapshot each
   time the clock crosses the evaluation interval and applies whatever
   action comes back (spawn a node / drain the newest node).  Two
   layers of hysteresis keep it from flapping:
   - a deadband between the scale-up and scale-down depth thresholds
     (validated [as_up_depth > as_down_depth]), and
   - a cooldown after any action during which the scaler only holds.

   Scale-up triggers on mean queue depth per node above [as_up_depth]
   OR live p99 above [as_up_p99_ms] (when set) — depth reacts to
   bursts before latency percentiles move, p99 catches slow drift that
   never piles the queues deep.  Scale-down requires BOTH depth below
   [as_down_depth] AND (when set) p99 at or below the up threshold, so
   the fleet never sheds capacity while visibly missing latency. *)

type config = {
  as_min_nodes : int;
  as_max_nodes : int;
  as_interval_s : float; (* evaluation cadence on the virtual clock *)
  as_cooldown_s : float; (* hold this long after any action *)
  as_up_depth : float; (* mean queue depth per node that triggers growth *)
  as_down_depth : float; (* ... below which shrinking is allowed *)
  as_up_p99_ms : float option; (* optional latency trigger *)
}

let default =
  {
    as_min_nodes = 1;
    as_max_nodes = 64;
    as_interval_s = 5.0;
    as_cooldown_s = 15.0;
    as_up_depth = 4.0;
    as_down_depth = 0.5;
    as_up_p99_ms = None;
  }

let validate c =
  let module E = Cinnamon_util.Error in
  if c.as_min_nodes < 1 then E.fail E.Invalid_input "Autoscaler: min_nodes must be >= 1";
  if c.as_max_nodes < c.as_min_nodes then
    E.fail E.Invalid_input "Autoscaler: max_nodes must be >= min_nodes";
  if c.as_interval_s <= 0.0 then E.fail E.Invalid_input "Autoscaler: interval must be > 0";
  if c.as_cooldown_s < 0.0 then E.fail E.Invalid_input "Autoscaler: cooldown must be >= 0";
  if not (c.as_up_depth > c.as_down_depth) then
    E.fail E.Invalid_input "Autoscaler: up_depth must exceed down_depth (hysteresis deadband)"

type signals = {
  sg_now_s : float;
  sg_nodes : int; (* active (non-draining) nodes *)
  sg_mean_depth : float; (* mean queue depth per active node *)
  sg_p99_ms : float option; (* live streaming p99, None before first completion *)
}

type action = Scale_up | Scale_down

type event = {
  ev_time_s : float;
  ev_action : action;
  ev_nodes_before : int;
  ev_nodes_after : int;
  ev_reason : string;
}

let action_name = function Scale_up -> "scale_up" | Scale_down -> "scale_down"

type t = {
  cfg : config;
  mutable last_action_s : float; (* -infinity until the first action *)
  mutable events : event list; (* newest first *)
}

let create cfg =
  validate cfg;
  { cfg; last_action_s = neg_infinity; events = [] }

let config t = t.cfg
let events t = List.rev t.events
let next_eval_after t ~now_s = now_s +. t.cfg.as_interval_s

let decide t (sg : signals) =
  let c = t.cfg in
  if sg.sg_now_s -. t.last_action_s < c.as_cooldown_s then None
  else begin
    let p99_high =
      match (c.as_up_p99_ms, sg.sg_p99_ms) with
      | Some lim, Some p -> p > lim
      | _ -> false
    in
    let p99_ok =
      match (c.as_up_p99_ms, sg.sg_p99_ms) with
      | Some lim, Some p -> p <= lim
      | _ -> true
    in
    let record action reason =
      let after = match action with Scale_up -> sg.sg_nodes + 1 | Scale_down -> sg.sg_nodes - 1 in
      let ev =
        {
          ev_time_s = sg.sg_now_s;
          ev_action = action;
          ev_nodes_before = sg.sg_nodes;
          ev_nodes_after = after;
          ev_reason = reason;
        }
      in
      t.last_action_s <- sg.sg_now_s;
      t.events <- ev :: t.events;
      Some ev
    in
    if sg.sg_nodes < c.as_max_nodes && sg.sg_mean_depth > c.as_up_depth then
      record Scale_up (Printf.sprintf "mean depth %.2f > %.2f" sg.sg_mean_depth c.as_up_depth)
    else if sg.sg_nodes < c.as_max_nodes && p99_high then
      record Scale_up
        (Printf.sprintf "p99 %.1f ms > %.1f ms"
           (Option.value sg.sg_p99_ms ~default:nan)
           (Option.value c.as_up_p99_ms ~default:nan))
    else if sg.sg_nodes > c.as_min_nodes && sg.sg_mean_depth < c.as_down_depth && p99_ok then
      record Scale_down (Printf.sprintf "mean depth %.2f < %.2f" sg.sg_mean_depth c.as_down_depth)
    else None
  end

let event_json ev =
  let module Json = Cinnamon_util.Json in
  Json.Obj
    [
      ("t_s", Json.Float ev.ev_time_s);
      ("action", Json.Str (action_name ev.ev_action));
      ("nodes_before", Json.Int ev.ev_nodes_before);
      ("nodes_after", Json.Int ev.ev_nodes_after);
      ("reason", Json.Str ev.ev_reason);
    ]
