(** Arrival-trace generation for fleet sweeps: stationary Poisson and
    a diurnal (non-homogeneous Poisson, thinned cosine wave) shape
    that gives the autoscaler load swings to follow.  Mix, priorities
    and deadlines follow the {!Cinnamon_serve.Loadgen} conventions. *)

type shape =
  | Poisson of { rate_rps : float }
  | Diurnal of { base_rps : float; peak_rps : float; period_s : float }
      (** rate(t) = base + (peak - base)(1 - cos 2πt/T)/2 *)

(** ["poisson"] or ["diurnal"]. *)
val shape_name : shape -> string

type config = {
  tr_shape : shape;
  tr_requests : int;
  tr_seed : int;
  tr_deadline_factor : float;
      (** deadline = arrival + factor x class base service time *)
  tr_compile : Cinnamon_compiler.Compile_config.t;
  tr_tenants : int;
      (** population size; [<= 1] = single default tenant, drawing no
          randomness, so legacy traces are byte-identical *)
  tr_tenant_skew : float;
      (** zipf exponent of tenant popularity (0 = uniform) *)
}

(** Raises a typed [Invalid_input] error on non-positive counts,
    rates, factors or periods, or peak < base. *)
val validate : config -> unit

(** [generate cfg ~classes] draws [tr_requests] arrivals from the
    weight-proportional class mix, where [classes] pairs each spec
    with its calibrated base service seconds (see
    {!Cinnamon_serve.Loadgen.calibrate}).  Deterministic in
    [tr_seed]. *)
val generate :
  config ->
  classes:(Cinnamon_serve.Loadgen.class_spec * float) list ->
  Cinnamon_serve.Request.t list
