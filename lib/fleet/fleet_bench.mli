(** The serve-fleet benchmark: per-policy scaling-efficiency curves
    over fleet sizes under Poisson and diurnal traces, plus an
    autoscaler demo, merged into [BENCH_cinnamon.json] under
    ["serve_fleet"].

    Offered load scales with fleet capacity ([fb_overload] x n x
    workers / calibrated mean service), so every sweep point sees the
    same per-node pressure and efficiency(n) = (goodput(n)/n) /
    (goodput(n0)/n0) isolates router + warm-key-cache effects.  All
    policies replay the same trace at each (shape, size). *)

type config = {
  fb_nodes : int list;  (** fleet sizes, ascending *)
  fb_policies : Router.policy list;
  fb_shapes : [ `Poisson | `Diurnal ] list;
  fb_requests : int;  (** per sweep point *)
  fb_mix : Cinnamon_serve.Loadgen.class_spec list;
  fb_seed : int;
  fb_overload : float;  (** offered load / fleet capacity *)
  fb_deadline_factor : float;
  fb_capacity : Cinnamon_serve.Node.capacity;
  fb_key_slots : int;
  fb_key_load_factor : float;  (** key-load penalty = factor x mean service *)
  fb_autoscale : bool;
  fb_compile : Cinnamon_compiler.Compile_config.t;
  fb_jobs : int;  (** real pool workers; 0 = recommended *)
}

(** Skewed five-benchmark mix — distinct compatibility keys give
    locality routing something to win on. *)
val standard_mix : Cinnamon_serve.Loadgen.class_spec list

(** 600 requests over fleets of 1/2/4 nodes, all policies, both trace
    shapes, autoscaler demo on — seconds of wall clock. *)
val quick : config

(** The headline sweep: 1 -> 64 nodes, million-request traces. *)
val full : config

type point = {
  pt_policy : string;
  pt_shape : string;
  pt_nodes : int;
  pt_report : Cinnamon_serve.Slo.report;
  pt_goodput_per_node : float;
  pt_efficiency : float;  (** vs smallest swept size, same policy+shape *)
  pt_key_hit_rate : float;
  pt_router : (string * int) list;
}

type scale_demo = {
  sd_shape : string;
  sd_report : Cinnamon_serve.Slo.report;
  sd_events : Autoscaler.event list;
  sd_nodes_peak : int;
  sd_nodes_final : int;
}

type result = {
  fbr_points : point list;  (** policy-major, then shape, then nodes *)
  fbr_demos : scale_demo list;
  fbr_base_service : (string * float) list;
  fbr_requests : int;
  fbr_jobs : int;
}

(** Calibrate once, then run every sweep point (and the autoscaler
    demos) on one shared pool.  Raises typed [Invalid_input] errors on
    empty/invalid sweep parameters. *)
val run : config -> result

val result_json : result -> Cinnamon_util.Json.t
val print_result : result -> unit

(** Merge into [file] under ["serve_fleet"], preserving other keys. *)
val write_section : file:string -> result -> unit
