(* Per-node warm-key cache: which (tenant, epoch, compiled-program) key
   sets are resident in a node's HBM right now.

   Entries are typed — a tenant id, a key epoch, and the batch
   compatibility digest — instead of the opaque strings the first fleet
   cut used, and capacity is byte-weighted: a resident entry costs its
   modeled key-set bytes against [capacity_bytes], so one BERT-sized
   tenant can evict three small ones, exactly the arithmetic a real HBM
   budget does.  Replacement stays MRU-list LRU-eviction — real
   deployments keep a handful of multi-GB key sets resident, so the
   resident list is short and a list beats any clever structure.

   An entry larger than the whole budget can never become resident:
   every dispatch streams it through HBM and counts a miss.  (The
   previous string cache silently "inserted" such an entry and then
   evicted it while inserting, so a one-slot cache thrashing between
   two keys under-counted the reload traffic; the [oversized]/[fits]
   split pins the corrected accounting, see test_tenant.)

   Hit/miss/byte counters feed the per-policy hit-rate and key-load
   penalty comparison in the fleet and tenant benches. *)

module Tenant_id = Cinnamon_tenant.Tenant_id
module Epoch = Cinnamon_tenant.Epoch

type entry = {
  en_tenant : Tenant_id.t;
  en_epoch : Epoch.t;
  en_compat : string; (* batch compatibility digest (program identity) *)
}

let entry_of_request (r : Cinnamon_serve.Request.t) =
  {
    en_tenant = r.Cinnamon_serve.Request.req_tenant;
    en_epoch = r.Cinnamon_serve.Request.req_epoch;
    en_compat = Cinnamon_serve.Batcher.compat_key r;
  }

let entry_equal a b =
  Tenant_id.equal a.en_tenant b.en_tenant
  && Epoch.equal a.en_epoch b.en_epoch
  && String.equal a.en_compat b.en_compat

let entry_to_string e =
  Printf.sprintf "%s/%s/%s" (Tenant_id.to_string e.en_tenant) (Epoch.to_string e.en_epoch)
    e.en_compat

type t = {
  capacity_bytes : int;
  mutable resident : (entry * int) list; (* (entry, bytes), MRU first *)
  mutable hits : int;
  mutable misses : int;
  mutable loaded_bytes : int; (* total bytes streamed in on misses *)
  mutable evictions : int;
}

let create ~capacity_bytes =
  if capacity_bytes < 1 then invalid_arg "Key_cache.create: capacity_bytes must be >= 1";
  { capacity_bytes; resident = []; hits = 0; misses = 0; loaded_bytes = 0; evictions = 0 }

(* Legacy unit-weight mode: [slots] entries of one byte each — the
   original slot-counted MRU semantics, byte-for-byte. *)
let create_slots ~slots =
  if slots < 1 then invalid_arg "Key_cache.create_slots: slots must be >= 1";
  create ~capacity_bytes:slots

let resident_bytes t = List.fold_left (fun acc (_, b) -> acc + b) 0 t.resident

(* Peek for routing decisions: no promotion, no counter movement — the
   router asking "where is this key warm?" must not perturb the cache
   state the dispatch path accounts against. *)
let mem t entry = List.exists (fun (e, _) -> entry_equal e entry) t.resident

(* The dispatch path: promote on hit; on a miss, stream the entry in
   (count its bytes) and evict LRU entries until it fits.  An entry
   that can NEVER fit is not inserted at all — each touch is a full
   reload, so repeated dispatches keep counting misses instead of
   pretending the set became resident.  Returns [true] iff already
   resident. *)
let touch t entry ~bytes =
  if bytes < 0 then invalid_arg "Key_cache.touch: bytes must be >= 0";
  if mem t entry then begin
    t.hits <- t.hits + 1;
    let resident_entry, rest =
      List.partition (fun (e, _) -> entry_equal e entry) t.resident
    in
    t.resident <- resident_entry @ rest;
    true
  end
  else begin
    t.misses <- t.misses + 1;
    t.loaded_bytes <- t.loaded_bytes + bytes;
    if bytes <= t.capacity_bytes then begin
      (* evict from the LRU end until the newcomer fits *)
      let rec evict () =
        if resident_bytes t + bytes > t.capacity_bytes then begin
          match List.rev t.resident with
          | [] -> ()
          | (lru, _) :: _ ->
            t.resident <- List.filter (fun (e, _) -> not (entry_equal e lru)) t.resident;
            t.evictions <- t.evictions + 1;
            evict ()
        end
      in
      evict ();
      t.resident <- (entry, bytes) :: t.resident
    end;
    false
  end

let hits t = t.hits
let misses t = t.misses
let loaded_bytes t = t.loaded_bytes
let evictions t = t.evictions
let resident t = List.map fst t.resident
