(* Per-node warm-key cache: which batch compatibility keys (compiled
   program + its evaluation/rotation key set) are resident in a node's
   HBM right now.

   Modeled as a tiny MRU list — real deployments keep a handful of
   multi-GB key sets resident, so capacities are single digits and a
   list beats any clever structure.  A dispatch whose key is cold pays
   the fleet's modeled HBM key-load penalty and evicts the
   least-recently-used resident key.  Hit/miss counters feed the
   per-policy hit-rate comparison in the fleet bench. *)

type t = {
  slots : int;
  mutable keys : string list; (* MRU first; length <= slots *)
  mutable hits : int;
  mutable misses : int;
}

let create ~slots =
  if slots < 1 then invalid_arg "Key_cache.create: slots must be >= 1";
  { slots; keys = []; hits = 0; misses = 0 }

(* Peek for routing decisions: no promotion, no counter movement — the
   router asking "where is this key warm?" must not perturb the cache
   state the dispatch path accounts against. *)
let mem t key = List.exists (String.equal key) t.keys

(* The dispatch path: promote on hit, insert-and-evict on miss.
   Returns [true] iff the key was already resident. *)
let touch t key =
  if mem t key then begin
    t.hits <- t.hits + 1;
    t.keys <- key :: List.filter (fun k -> not (String.equal k key)) t.keys;
    true
  end
  else begin
    t.misses <- t.misses + 1;
    let keep = List.filteri (fun i _ -> i < t.slots - 1) t.keys in
    t.keys <- key :: keep;
    false
  end

let hits t = t.hits
let misses t = t.misses
let resident t = t.keys
