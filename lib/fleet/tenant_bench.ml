(* The multi-tenant serving benchmark: one fleet, >= 64 tenants with a
   zipf popularity curve, per-tenant key sets rotating mid-trace, and a
   transciphering ingress priced from the real compiled K_transcipher
   circuit.

   Every routing policy replays the SAME trace (arrivals are generated
   once), so the per-policy numbers isolate what tenant-key locality
   buys: the Locality policy routes each request to a node where its
   (tenant, epoch, program) key entry is already HBM-resident, while
   Round_robin scatters tenants and re-streams their multi-GB key sets.

   Modeled costs are tied to calibrated service times, not wall-clock
   guesses: a fully cold key-set load costs [tb_key_load_factor] x the
   mean calibrated service time (scaled per GB actually streamed), and
   the ingress charge per request is the measured simulated seconds of
   the K_transcipher conversion circuit itself.  The tenant rotation
   period is the estimated trace duration / [tb_rotation_periods], so
   rotations start, drain and complete while requests are in flight.

   Results merge into BENCH_cinnamon.json under ["tenant_serving"],
   preserving every other key in the file. *)

module CC = Cinnamon_compiler.Compile_config
module Error = Cinnamon_util.Error
module Json = Cinnamon_util.Json
module Exec = Cinnamon_exec
module Node = Cinnamon_serve.Node
module Slo = Cinnamon_serve.Slo
module Loadgen = Cinnamon_serve.Loadgen
module Store = Cinnamon_tenant.Store
module Key_set = Cinnamon_tenant.Key_set
module Tenant_id = Cinnamon_tenant.Tenant_id
module Epoch = Cinnamon_tenant.Epoch
module Transcipher = Cinnamon_tenant.Transcipher

type config = {
  tb_nodes : int;
  tb_tenants : int; (* >= 2; population behind the zipf curve *)
  tb_requests : int;
  tb_mix : Loadgen.class_spec list;
  tb_seed : int;
  tb_overload : float; (* offered load as a multiple of fleet capacity *)
  tb_deadline_factor : float;
  tb_tenant_skew : float; (* zipf exponent of tenant popularity *)
  tb_capacity : Node.capacity;
  tb_rotations : int list; (* rotation amounts in every tenant's key set *)
  tb_conjugation : bool;
  tb_key_capacity_sets : float; (* per-node HBM key budget, in key-set multiples *)
  tb_key_load_factor : float; (* full-set cold load = factor x mean service *)
  tb_rotation_periods : float; (* rotations per estimated trace duration *)
  tb_compile : CC.t;
  tb_jobs : int; (* real pool workers; 0 = recommended *)
}

(* Three-class mix on one system: with tenants and epochs leading the
   batch compatibility key, tenant diversity (not class diversity) is
   what stresses the key caches. *)
let standard_mix =
  [
    { Loadgen.cls_bench = "bootstrap"; cls_system = "cinnamon-4"; cls_weight = 0.5 };
    { Loadgen.cls_bench = "resnet"; cls_system = "cinnamon-4"; cls_weight = 0.3 };
    { Loadgen.cls_bench = "helr"; cls_system = "cinnamon-4"; cls_weight = 0.2 };
  ]

let quick =
  {
    tb_nodes = 4;
    tb_tenants = 64;
    tb_requests = 600;
    tb_mix = standard_mix;
    tb_seed = 42;
    tb_overload = 1.2;
    tb_deadline_factor = 10.0;
    tb_tenant_skew = 1.0;
    tb_capacity =
      { Node.workers = 2; queue_capacity = 32; max_batch = 8; max_attempts = 3; drain_after_s = None };
    (* the amounts K_transcipher's affine diffusion rotates by *)
    tb_rotations = [ 1; 4 ];
    tb_conjugation = false;
    tb_key_capacity_sets = 24.0;
    tb_key_load_factor = 0.25;
    tb_rotation_periods = 3.0;
    tb_compile = CC.paper ();
    tb_jobs = 0;
  }

let full = { quick with tb_tenants = 256; tb_requests = 20_000 }

type point = {
  tp_policy : string;
  tp_report : Slo.report;
  tp_key_hit_rate : float; (* dispatched-batch tenant-key hit rate *)
  tp_key_penalty_share : float; (* key-load s / total charged service s *)
  tp_transcipher_pct : float; (* ingress s as % of base service s *)
  tp_cold_p99_ms : float; (* p99 over per-tenant first-completion latency *)
  tp_rotations_started : int;
  tp_rotations_completed : int;
  tp_key_gb_loaded : float; (* HBM key traffic across all nodes *)
  tp_router : (string * int) list;
}

type result = {
  tbr_points : point list; (* one per policy, run order *)
  tbr_nodes : int;
  tbr_tenants : int;
  tbr_requests : int;
  tbr_jobs : int;
  tbr_rotation_period_s : float;
  tbr_transcipher_s : float; (* calibrated ingress seconds per request *)
  tbr_key_set_gb : float; (* one tenant-epoch key set *)
  tbr_upload : Transcipher.upload;
  tbr_locality_gain : float; (* locality hit rate - round_robin hit rate *)
}

let percentile_ms q = function
  | [] -> 0.0
  | xs ->
    let a = Array.of_list xs in
    Array.sort Float.compare a;
    let n = Array.length a in
    let idx = int_of_float (Float.ceil (q *. Float.of_int n)) - 1 in
    a.(max 0 (min (n - 1) idx))

let report_of ~fleet_result ~stats0 ~stats1 =
  let open Exec.Result_cache in
  Slo.report fleet_result.Fleet.fr_slo
    ~duration_s:(Float.max fleet_result.Fleet.fr_makespan_s 1e-9)
    ~compiles:(stats1.misses - stats0.misses)
    ~cache_hits:(stats1.hits + stats1.disk_hits - stats0.hits - stats0.disk_hits)

let run cfg =
  if cfg.tb_nodes < 1 then Error.fail Error.Invalid_input "Tenant_bench: nodes must be >= 1";
  if cfg.tb_tenants < 2 then Error.fail Error.Invalid_input "Tenant_bench: tenants must be >= 2";
  if cfg.tb_requests < 1 then Error.fail Error.Invalid_input "Tenant_bench: requests must be >= 1";
  if cfg.tb_overload <= 0.0 then Error.fail Error.Invalid_input "Tenant_bench: overload must be > 0";
  if cfg.tb_key_capacity_sets <= 0.0 then
    Error.fail Error.Invalid_input "Tenant_bench: key capacity must be > 0 sets";
  if cfg.tb_key_load_factor < 0.0 then
    Error.fail Error.Invalid_input "Tenant_bench: key_load_factor must be >= 0";
  if cfg.tb_rotation_periods <= 0.0 then
    Error.fail Error.Invalid_input "Tenant_bench: rotation_periods must be > 0";
  let pool = Exec.Pool.create ~jobs:cfg.tb_jobs () in
  Fun.protect ~finally:(fun () -> Exec.Pool.shutdown pool) @@ fun () ->
  let calibrated = Loadgen.calibrate ~pool ~compile:cfg.tb_compile cfg.tb_mix in
  (* the ingress price IS the conversion circuit: calibrate the real
     compiled K_transcipher workload like any serving class *)
  let transcipher_s =
    let sys =
      match cfg.tb_mix with
      | c :: _ -> c.Loadgen.cls_system
      | [] -> Error.fail Error.Invalid_input "Tenant_bench: mix must be non-empty"
    in
    match
      Loadgen.calibrate ~pool ~compile:cfg.tb_compile
        [ { Loadgen.cls_bench = "transcipher"; cls_system = sys; cls_weight = 1.0 } ]
    with
    | [ (_, s) ] -> s
    | _ -> assert false
  in
  let total_weight =
    List.fold_left (fun acc (c, _) -> acc +. c.Loadgen.cls_weight) 0.0 calibrated
  in
  let mean_service =
    List.fold_left
      (fun acc (c, s) -> acc +. (c.Loadgen.cls_weight /. total_weight *. s))
      0.0 calibrated
  in
  let rate =
    cfg.tb_overload *. Float.of_int (cfg.tb_nodes * cfg.tb_capacity.Node.workers) /. mean_service
  in
  let duration_est = Float.of_int cfg.tb_requests /. rate in
  let rotation_period_s = duration_est /. cfg.tb_rotation_periods in
  let profile = Key_set.profile_of_config cfg.tb_compile in
  let set_bytes =
    Key_set.bytes
      (Key_set.make profile ~tenant:Tenant_id.default ~epoch:Epoch.zero
         ~rotations:cfg.tb_rotations ~conjugation:cfg.tb_conjugation)
  in
  let set_gb = Float.of_int set_bytes /. 1e9 in
  let tenancy =
    {
      Fleet.tn_store =
        {
          Store.sc_profile = profile;
          sc_rotations = cfg.tb_rotations;
          sc_conjugation = cfg.tb_conjugation;
          sc_rotation_period_s = rotation_period_s;
        };
      tn_key_capacity_bytes =
        max 1 (int_of_float (cfg.tb_key_capacity_sets *. Float.of_int set_bytes));
      tn_key_load_s_per_gb = cfg.tb_key_load_factor *. mean_service /. set_gb;
      tn_transcipher_s = transcipher_s;
      tn_upload = Transcipher.upload_of_config cfg.tb_compile;
    }
  in
  let arrivals =
    Trace.generate
      {
        Trace.tr_shape = Trace.Poisson { rate_rps = rate };
        tr_requests = cfg.tb_requests;
        tr_seed = cfg.tb_seed;
        tr_deadline_factor = cfg.tb_deadline_factor;
        tr_compile = cfg.tb_compile;
        tr_tenants = cfg.tb_tenants;
        tr_tenant_skew = cfg.tb_tenant_skew;
      }
      ~classes:calibrated
  in
  let make_node id =
    Node.make ~name:(Printf.sprintf "node%d" id) ~capacity:cfg.tb_capacity
      ~execute:Loadgen.workload_executor ()
  in
  let run_policy policy =
    let fleet_cfg =
      {
        Fleet.fc_nodes = cfg.tb_nodes;
        fc_policy = policy;
        fc_key_slots = 1; (* unused: tenancy switches the caches to byte weighting *)
        fc_key_load_s = 0.0;
        fc_autoscale = None;
        fc_collect_responses = false;
        fc_tenancy = Some tenancy;
      }
    in
    let stats0 = Exec.Result_cache.stats () in
    let fr = Fleet.run ~pool fleet_cfg ~make_node ~arrivals () in
    let stats1 = Exec.Result_cache.stats () in
    let tr = Option.get fr.Fleet.fr_tenants in
    let total_charged =
      tr.Fleet.tr_base_service_s +. tr.Fleet.tr_key_penalty_s +. tr.Fleet.tr_transcipher_s
    in
    {
      tp_policy = Router.policy_name policy;
      tp_report = report_of ~fleet_result:fr ~stats0 ~stats1;
      tp_key_hit_rate = Fleet.key_hit_rate fr;
      tp_key_penalty_share =
        (if total_charged > 0.0 then tr.Fleet.tr_key_penalty_s /. total_charged else 0.0);
      tp_transcipher_pct =
        (if tr.Fleet.tr_base_service_s > 0.0 then
           100.0 *. tr.Fleet.tr_transcipher_s /. tr.Fleet.tr_base_service_s
         else 0.0);
      tp_cold_p99_ms = percentile_ms 0.99 (List.map snd tr.Fleet.tr_cold_start_ms);
      tp_rotations_started = tr.Fleet.tr_store.Store.st_rotations_started;
      tp_rotations_completed = tr.Fleet.tr_store.Store.st_rotations_completed;
      tp_key_gb_loaded = Float.of_int tr.Fleet.tr_key_bytes_loaded /. 1e9;
      tp_router = fr.Fleet.fr_router;
    }
  in
  let points = List.map run_policy [ Router.Round_robin; Router.Least_loaded; Router.Locality ] in
  let hit name =
    match List.find_opt (fun p -> p.tp_policy = name) points with
    | Some p -> p.tp_key_hit_rate
    | None -> 0.0
  in
  {
    tbr_points = points;
    tbr_nodes = cfg.tb_nodes;
    tbr_tenants = cfg.tb_tenants;
    tbr_requests = cfg.tb_requests;
    tbr_jobs = cfg.tb_jobs;
    tbr_rotation_period_s = rotation_period_s;
    tbr_transcipher_s = transcipher_s;
    tbr_key_set_gb = set_gb;
    tbr_upload = tenancy.Fleet.tn_upload;
    tbr_locality_gain = hit "locality" -. hit "round_robin";
  }

let point_json p =
  Json.Obj
    [
      ("key_hit_rate", Json.Float p.tp_key_hit_rate);
      ("key_load_penalty_share", Json.Float p.tp_key_penalty_share);
      ("cold_start_p99_ms", Json.Float p.tp_cold_p99_ms);
      ("transcipher_overhead_pct", Json.Float p.tp_transcipher_pct);
      ("rotations_started", Json.Int p.tp_rotations_started);
      ("rotations_completed", Json.Int p.tp_rotations_completed);
      ("key_gb_loaded", Json.Float p.tp_key_gb_loaded);
      ("router", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) p.tp_router));
      ("slo", Slo.report_json p.tp_report);
    ]

let result_json r =
  Json.Obj
    [
      ("tenants", Json.Int r.tbr_tenants);
      ("nodes", Json.Int r.tbr_nodes);
      ("requests", Json.Int r.tbr_requests);
      ("jobs", Json.Int r.tbr_jobs);
      ("key_set_gb", Json.Float r.tbr_key_set_gb);
      ("rotation_period_s", Json.Float r.tbr_rotation_period_s);
      ("transcipher_service_s", Json.Float r.tbr_transcipher_s);
      ( "upload",
        Json.Obj
          [
            ("sym_bytes_per_req", Json.Int r.tbr_upload.Transcipher.up_sym_bytes);
            ("ckks_bytes_per_req", Json.Int r.tbr_upload.Transcipher.up_ckks_bytes);
            ("savings_x", Json.Float (Transcipher.savings_x r.tbr_upload));
          ] );
      ("policies", Json.Obj (List.map (fun p -> (p.tp_policy, point_json p)) r.tbr_points));
      ("locality_hit_gain_vs_rr", Json.Float r.tbr_locality_gain);
    ]

let fmt_opt_ms = function None -> "-" | Some v -> Printf.sprintf "%.2f" v

let print_result r =
  Printf.printf
    "tenants %d over %d nodes, %d requests; key set %.2f GB, rotation period %.1fs\n"
    r.tbr_tenants r.tbr_nodes r.tbr_requests r.tbr_key_set_gb r.tbr_rotation_period_s;
  Printf.printf "transcipher ingress %.4f s/req; upload %d B sym vs %d B ckks (%.0fx)\n"
    r.tbr_transcipher_s r.tbr_upload.Transcipher.up_sym_bytes
    r.tbr_upload.Transcipher.up_ckks_bytes
    (Transcipher.savings_x r.tbr_upload);
  Printf.printf "%-12s %9s %9s %9s %9s %9s %7s %10s\n" "policy" "goodput/s" "p99_ms" "key_hit"
    "pen_share" "cold_p99" "rots" "ingress%";
  List.iter
    (fun p ->
      Printf.printf "%-12s %9.2f %9s %8.1f%% %8.1f%% %9.1f %3d/%-3d %9.2f\n" p.tp_policy
        p.tp_report.Slo.rp_goodput_rps
        (fmt_opt_ms p.tp_report.Slo.rp_p99_ms)
        (100.0 *. p.tp_key_hit_rate)
        (100.0 *. p.tp_key_penalty_share)
        p.tp_cold_p99_ms p.tp_rotations_started p.tp_rotations_completed p.tp_transcipher_pct)
    r.tbr_points;
  Printf.printf "locality hit-rate gain over round-robin: %+.1f%%\n" (100.0 *. r.tbr_locality_gain)

(* Merge this run's result into BENCH_cinnamon.json under
   ["tenant_serving"], preserving every other key in the file. *)
let write_section ~file r =
  let existing =
    if Sys.file_exists file then
      try
        let ic = open_in_bin file in
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        match Json.of_string s with Ok (Json.Obj kvs) -> kvs | _ -> []
      with _ -> []
    else []
  in
  let existing =
    if List.mem_assoc "schema" existing then existing
    else ("schema", Json.Str "cinnamon-bench-v1") :: existing
  in
  let merged = ("tenant_serving", result_json r) :: List.remove_assoc "tenant_serving" existing in
  let merged =
    match List.assoc_opt "schema" merged with
    | Some s -> ("schema", s) :: List.remove_assoc "schema" merged
    | None -> merged
  in
  let oc = open_out file in
  output_string oc (Json.to_string (Json.Obj merged));
  output_char oc '\n';
  close_out oc
