(* Request routing across the active nodes of a fleet.

   The router sees one immutable snapshot per request — candidates in
   node-id order with their live queue+inflight load and whether the
   request's compatibility key is warm in their key cache — and picks
   a node id, or none (global backpressure: every node's admission
   queue is at capacity).  All state it keeps is a round-robin cursor
   and per-decision counters, so routing is deterministic in
   (candidates, arrival order) and independent of the real pool size.

   Policies:
   - Round_robin: rotate over nodes with room, skipping full ones.
   - Least_loaded: minimum live load (queued + in-flight requests),
     ties to the lowest node id.
   - Locality: least-loaded among nodes where the key is already warm
     ("locality_warm" decisions); spill to plain least-loaded when no
     warm node has room ("locality_spill") — paying one modeled HBM
     key load to heat a new node rather than queueing behind a hot
     one. *)

type policy = Round_robin | Least_loaded | Locality

let policy_name = function
  | Round_robin -> "round_robin"
  | Least_loaded -> "least_loaded"
  | Locality -> "locality"

let policy_of_string = function
  | "round_robin" | "rr" -> Some Round_robin
  | "least_loaded" | "ll" -> Some Least_loaded
  | "locality" | "loc" -> Some Locality
  | _ -> None

let all_policies = [ Round_robin; Least_loaded; Locality ]

type candidate = {
  cd_id : int;
  cd_load : int; (* queued + in-flight requests *)
  cd_has_room : bool;
  cd_warm : bool; (* request's compat key resident in the node's key cache *)
}

type t = {
  rt_policy : policy;
  mutable cursor : int; (* round-robin position *)
  mutable d_round_robin : int;
  mutable d_least_loaded : int;
  mutable d_locality_warm : int;
  mutable d_locality_spill : int;
  mutable d_fleet_full : int;
}

let create policy =
  {
    rt_policy = policy;
    cursor = 0;
    d_round_robin = 0;
    d_least_loaded = 0;
    d_locality_warm = 0;
    d_locality_spill = 0;
    d_fleet_full = 0;
  }

let policy t = t.rt_policy

let least_loaded cands =
  List.fold_left
    (fun best c ->
      if not c.cd_has_room then best
      else
        match best with
        | Some b when b.cd_load <= c.cd_load -> best
        | _ -> Some c)
    None cands

let round_robin t cands =
  let arr = Array.of_list cands in
  let n = Array.length arr in
  if n = 0 then None
  else begin
    let rec scan i =
      if i >= n then None
      else
        let idx = (t.cursor + i) mod n in
        if arr.(idx).cd_has_room then begin
          t.cursor <- (idx + 1) mod n;
          Some arr.(idx)
        end
        else scan (i + 1)
    in
    scan 0
  end

let pick t cands =
  let chosen =
    match t.rt_policy with
    | Round_robin -> (
      match round_robin t cands with
      | Some c ->
        t.d_round_robin <- t.d_round_robin + 1;
        Some c
      | None -> None)
    | Least_loaded -> (
      match least_loaded cands with
      | Some c ->
        t.d_least_loaded <- t.d_least_loaded + 1;
        Some c
      | None -> None)
    | Locality -> (
      match least_loaded (List.filter (fun c -> c.cd_warm) cands) with
      | Some c ->
        t.d_locality_warm <- t.d_locality_warm + 1;
        Some c
      | None -> (
        match least_loaded cands with
        | Some c ->
          t.d_locality_spill <- t.d_locality_spill + 1;
          Some c
        | None -> None))
  in
  match chosen with
  | Some c -> Some c.cd_id
  | None ->
    t.d_fleet_full <- t.d_fleet_full + 1;
    None

let decisions t =
  List.filter
    (fun (_, n) -> n > 0)
    [
      ("round_robin", t.d_round_robin);
      ("least_loaded", t.d_least_loaded);
      ("locality_warm", t.d_locality_warm);
      ("locality_spill", t.d_locality_spill);
      ("fleet_full", t.d_fleet_full);
    ]
