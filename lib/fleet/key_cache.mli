(** Per-node warm-key cache: which (tenant, epoch, program) key sets
    are resident in a node's HBM.  Typed entries, byte-weighted
    capacity, MRU list with LRU eviction — real key sets are multi-GB,
    so the resident list stays short.  An entry larger than the whole
    budget never becomes resident: every touch counts a (correctly
    accounted) miss. *)

type entry = {
  en_tenant : Cinnamon_tenant.Tenant_id.t;
  en_epoch : Cinnamon_tenant.Epoch.t;
  en_compat : string;  (** batch compatibility digest (program identity) *)
}

(** The entry a request's dispatch will look up: its tenant, its
    stamped epoch, and its batch compatibility key. *)
val entry_of_request : Cinnamon_serve.Request.t -> entry

val entry_equal : entry -> entry -> bool
val entry_to_string : entry -> string

type t

(** Raises [Invalid_argument] if [capacity_bytes < 1]. *)
val create : capacity_bytes:int -> t

(** Legacy unit-weight mode: [slots] one-byte entries — the original
    slot-counted MRU semantics.  Raises if [slots < 1]. *)
val create_slots : slots:int -> t

(** Residency peek for routing: no promotion, no counters. *)
val mem : t -> entry -> bool

(** Dispatch-path lookup: promote on hit; on a miss, count [bytes]
    streamed in and evict LRU entries until the newcomer fits (or skip
    insertion entirely if it can never fit).  [true] iff already
    resident. *)
val touch : t -> entry -> bytes:int -> bool

val hits : t -> int
val misses : t -> int

(** Total bytes streamed in on misses (the HBM key-load traffic). *)
val loaded_bytes : t -> int

val evictions : t -> int

(** Resident entries, most recently used first. *)
val resident : t -> entry list
