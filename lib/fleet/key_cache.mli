(** Per-node warm-key cache: which batch compatibility keys (compiled
    program + evaluation/rotation key set) are resident in a node's
    HBM.  Tiny MRU list — real key sets are multi-GB, so capacities
    are single digits. *)

type t

(** Raises [Invalid_argument] if [slots < 1]. *)
val create : slots:int -> t

(** Residency peek for routing: no promotion, no counters. *)
val mem : t -> string -> bool

(** Dispatch-path lookup: promote on hit; insert (evicting the LRU
    key) and count a miss otherwise.  [true] iff already resident. *)
val touch : t -> string -> bool

val hits : t -> int
val misses : t -> int

(** Resident keys, most recently used first. *)
val resident : t -> string list
