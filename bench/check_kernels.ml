(* Numeric kernel-performance regression gate.

   Reads BENCH_cinnamon.json (as produced by [bench/main.exe -- kernels])
   and fails — exit code 1 — if a budgeted microbenchmark is slower
   than its checked-in (kernel, N) budget.  The budgets are
   deliberately generous (4-5x headroom over measured steady-state on
   the reference machine) so the gate trips on structural regressions
   (boxing in a hot loop, lost inlining, accidental copies, a fusion
   falling back to the naive dataflow), not on shared-runner noise.

   The gate requires at least one [ntt_forward] and one [keyswitch]
   entry to match a budget — a silently missing headline kernel is
   itself a failure.

   Usage: check_kernels [BENCH_cinnamon.json] *)

module Json = Cinnamon_util.Json

(* us/op budgets keyed by (kernel, N).  Reference steady-state on the
   dev machine:
     ntt_forward          N=2^12 ~86us,   N=2^16 ~1800us
     pointwise_mul_into   N=2^12 ~50us,   N=2^16 ~1670us   (3 / 6 limbs)
     keyswitch (fused)    N=2^10 ~2200us, N=2^12 ~18.4ms, N=2^16 ~302ms
   The N=2^10 keyswitch budget is the PR acceptance bound (>=5x over
   the 56170us pre-fusion baseline); the rest carry ~4x headroom. *)
let budgets =
  [
    (("ntt_forward", 4096), 400.0);
    (("ntt_forward", 65536), 3465.0);
    (("pointwise_mul_into", 4096), 250.0);
    (("pointwise_mul_into", 65536), 7000.0);
    (("keyswitch", 1024), 11300.0);
    (("keyswitch", 4096), 75000.0);
    (("keyswitch", 65536), 1_250_000.0);
  ]

(* Kernels that must contribute at least one checked entry. *)
let required = [ "ntt_forward"; "keyswitch" ]

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("check_kernels: " ^ s); exit 1) fmt

let () =
  let path = if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_cinnamon.json" in
  let text =
    try In_channel.with_open_text path In_channel.input_all
    with Sys_error e -> fail "cannot read %s: %s" path e
  in
  let root =
    match Json.of_string text with Ok j -> j | Error e -> fail "%s: parse error: %s" path e
  in
  let entries =
    match Option.bind (Json.member "kernel_microbench" root) Json.to_list with
    | Some l -> l
    | None -> fail "%s: no kernel_microbench section" path
  in
  let field name conv e =
    match Option.bind (Json.member name e) conv with
    | Some v -> v
    | None -> fail "%s: microbench entry missing %S" path name
  in
  let checked = Hashtbl.create 8 in
  List.iter
    (fun e ->
      let kernel = field "kernel" Json.to_str e in
      let n = field "n" Json.to_int e in
      match List.assoc_opt (kernel, n) budgets with
      | None -> ()
      | Some budget ->
          let us = field "us_per_op" Json.to_float e in
          Hashtbl.replace checked kernel ();
          if us > budget then fail "%s N=%d took %.1f us/op, budget %.1f us/op" kernel n us budget
          else
            Printf.printf "check_kernels: %s N=%d %.1f us/op within budget %.1f us/op\n" kernel n
              us budget)
    entries;
  List.iter
    (fun kernel ->
      if not (Hashtbl.mem checked kernel) then
        fail "%s: no %s entry with a budgeted ring size" path kernel)
    required;
  print_endline "check_kernels: ok"
