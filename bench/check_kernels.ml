(* Numeric kernel-performance regression gate.

   Reads BENCH_cinnamon.json (as produced by [bench/main.exe -- kernels])
   and fails — exit code 1 — if the [ntt_forward] microbenchmark is
   slower than a checked-in budget for its ring size.  The budgets are
   deliberately generous (4-5x headroom over measured steady-state on
   the reference machine, and still well below the pre-Bigarray
   int-array kernels) so the gate trips on structural regressions
   (boxing in the butterfly loop, lost inlining, accidental copies),
   not on shared-runner noise.

   Usage: check_kernels [BENCH_cinnamon.json] *)

module Json = Cinnamon_util.Json

(* us/op budget for ntt_forward, keyed by ring size N.  For reference,
   steady-state on the dev machine: N=2^12 ~86us, N=2^16 ~1800us; the
   old int-array kernels: N=2^12 ~490us, N=2^16 ~10390us. *)
let budgets = [ (4096, 400.0); (65536, 3465.0) ]

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("check_kernels: " ^ s); exit 1) fmt

let () =
  let path = if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_cinnamon.json" in
  let text =
    try In_channel.with_open_text path In_channel.input_all
    with Sys_error e -> fail "cannot read %s: %s" path e
  in
  let root =
    match Json.of_string text with Ok j -> j | Error e -> fail "%s: parse error: %s" path e
  in
  let entries =
    match Option.bind (Json.member "kernel_microbench" root) Json.to_list with
    | Some l -> l
    | None -> fail "%s: no kernel_microbench section" path
  in
  let field name conv e =
    match Option.bind (Json.member name e) conv with
    | Some v -> v
    | None -> fail "%s: microbench entry missing %S" path name
  in
  let checked = ref 0 in
  List.iter
    (fun e ->
      if field "kernel" Json.to_str e = "ntt_forward" then begin
        let n = field "n" Json.to_int e in
        let us = field "us_per_op" Json.to_float e in
        match List.assoc_opt n budgets with
        | None -> Printf.printf "check_kernels: ntt_forward N=%d %.1f us/op (no budget, skipped)\n" n us
        | Some budget ->
            incr checked;
            if us > budget then
              fail "ntt_forward N=%d took %.1f us/op, budget %.1f us/op" n us budget
            else
              Printf.printf "check_kernels: ntt_forward N=%d %.1f us/op within budget %.1f us/op\n"
                n us budget
      end)
    entries;
  if !checked = 0 then fail "%s: no ntt_forward entry with a known ring size" path;
  print_endline "check_kernels: ok"
