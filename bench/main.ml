(* The Cinnamon benchmark harness.

   Regenerates every table and figure of the paper's evaluation
   (Tables 1-3, Figures 6, 11-16, and the §4.3.1 / §7.4 headline
   claims), printing measured-vs-paper values; EXPERIMENTS.md records
   the comparison.  Also runs Bechamel microbenchmarks of the
   functional OCaml kernels (NTT, base conversion, keyswitch, rescale)
   that calibrate the CPU baseline.

   Usage: main.exe [section ...] [--jobs N] [--quick] [--cache-dir DIR]
                   [--bench-out FILE] [--trace FILE] [--metrics]
     sections: table1 table2 table3 fig6 fig11 fig12 fig13 fig14 fig15
               fig16 sec43 sec74 micro kernels serve fleet   (default: all)
     --jobs N        worker domains for the Table-2/Fig-11 sweep
                     (0 = Domain.recommended_domain_count; 1 = sequential)
     --quick         restrict the sweep to the Bootstrap benchmark,
                     shrink the kernel microbench to N=2^12 and the
                     serving load test and fleet sweep to their quick
                     presets, and default the section list to
                     "table2 kernels serve fleet" (CI smoke run)
     --cache-dir DIR persist simulation results under DIR
                     (conventionally _cinnamon_cache/); warm runs skip
                     re-simulation entirely
     --bench-out F   where to write the perf-trajectory JSON
                     (default BENCH_cinnamon.json; "-" disables)
     --trace FILE    write a Chrome trace-event JSON of the run
     --metrics       print the telemetry report (pass timings, counters,
                     simulation-cache hits/misses) after the sections

   Run time for the full set is dominated by kernel compilation; the
   result cache in Cinnamon_exec shares compiled+simulated kernels
   across sections (and, with --cache-dir, across runs). *)

open Cinnamon_workloads
module T = Cinnamon_util.Table
module SC = Cinnamon_sim.Sim_config
module Sim = Cinnamon_sim.Simulator
module CC = Cinnamon_compiler.Compile_config
module PD = Cinnamon_arch.Paper_data
module Tel = Cinnamon_telemetry.Telemetry
module Exec = Cinnamon_exec
module Json = Cinnamon_util.Json

let jobs = ref 0 (* 0 = Pool.default_jobs () *)
let quick = ref false

let section_header name = Printf.printf "\n################ %s ################\n%!" name

(* ---------------------------------------------------------------- Table 1 *)

let table1 () =
  section_header "Table 1: per-component area breakdown (22 nm)";
  let a = Lazy.force Cinnamon_arch.Area.cinnamon_chip in
  let t = T.create ~title:"Cinnamon chip area" ~header:[ "Component"; "Area (mm^2)" ]
      ~aligns:[ T.Left; T.Right ] () in
  List.iter
    (fun (c : Cinnamon_arch.Area.component) ->
      T.add_row t [ Printf.sprintf "%dx %s" c.count c.comp_name;
                    T.fmt_float ~digits:2 (c.area_mm2 *. Float.of_int c.count) ])
    a.Cinnamon_arch.Area.components;
  T.add_row t [ "Total FU area"; T.fmt_float ~digits:2 a.fu_area ];
  T.add_row t [ "BCU buffers (2.85MB)"; T.fmt_float ~digits:2 a.bcu_buffers_mm2 ];
  T.add_row t [ "Register file (56MB)"; T.fmt_float ~digits:2 a.register_file_mm2 ];
  T.add_row t [ "4x HBM PHY"; T.fmt_float ~digits:2 a.hbm_phy_mm2 ];
  T.add_row t [ "2x Network PHY"; T.fmt_float ~digits:2 a.net_phy_mm2 ];
  T.add_row t [ "Total chip area"; T.fmt_float ~digits:2 a.total_mm2 ];
  T.print t;
  Printf.printf "Paper total: 223.18 mm^2; model: %.2f mm^2\n" a.total_mm2;
  let m = Lazy.force Cinnamon_arch.Area.cinnamon_m in
  Printf.printf "Cinnamon-M model: %.2f mm^2 (paper: 719.78 mm^2)\n" m.Cinnamon_arch.Area.total_mm2;
  let b = Cinnamon_arch.Area.bcu_comparison in
  Printf.printf
    "Compact BCU (s4.7): multipliers %d -> %d (%.1fx), buffers %.2fMB -> %.2fMB (%.1fx)\n"
    b.craterlake_multipliers b.cinnamon_multipliers
    (Float.of_int b.craterlake_multipliers /. Float.of_int b.cinnamon_multipliers)
    b.craterlake_buffer_mb b.cinnamon_buffer_mb
    (b.craterlake_buffer_mb /. b.cinnamon_buffer_mb)

(* ---------------------------------------------------------------- Table 3 *)

let table3 () =
  section_header "Table 3: manufacturing yield and tape-out cost";
  let t =
    T.create ~title:"Yield model (D0=0.2/cm^2, alpha=3, 300mm wafer)"
      ~header:[ "Accelerator"; "Die (mm^2)"; "Yield (model)"; "Yield (paper)"; "Dies/wafer"; "Rel. cost/die" ]
      ~aligns:[ T.Left; T.Right; T.Right; T.Right; T.Right; T.Right ] ()
  in
  let base_cost =
    Cinnamon_arch.Yield.cost_per_good_die
      ~area_mm2:Cinnamon_arch.Yield.cinnamon.die_area_mm2
      ~wafer_price:Cinnamon_arch.Yield.cinnamon.wafer_price
  in
  List.iter
    (fun (a : Cinnamon_arch.Yield.accelerator) ->
      let r = Cinnamon_arch.Yield.row a in
      let paper_y =
        match List.assoc_opt a.accel_name Cinnamon_arch.Yield.paper_yields with
        | Some y -> Printf.sprintf "%.0f%%" (100.0 *. y)
        | None -> "-"
      in
      T.add_row t
        [ r.r_name; T.fmt_float ~digits:1 r.r_area;
          Printf.sprintf "%.0f%%" (100.0 *. r.r_yield); paper_y;
          string_of_int r.r_dies_per_wafer; T.fmt_float (r.r_cost_per_die /. base_cost) ])
    Cinnamon_arch.Yield.table3;
  T.print t

(* --------------------------------------------- Table 2 / Fig. 11 / Fig. 15 *)

let measured_table2 : (string * string, float) Hashtbl.t = Hashtbl.create 16
let measured_util : (string * string, Sim.utilization) Hashtbl.t = Hashtbl.create 16
let sweep_state : Runner.sweep option ref = ref None

let bench_list () = if !quick then [ Specs.bootstrap_13 ] else Specs.all

(* The Table-2/Fig-11 sweep: every benchmark on every system, fanned
   across the domain pool.  Runs once; table2/fig11/fig12/fig15 all
   read the memoized results.  Numbers are identical for every --jobs
   value (the pool only warms the result cache; composition is
   sequential). *)
let run_table2 () =
  if !sweep_state = None then begin
    let pairs =
      List.concat_map
        (fun (b : Specs.benchmark) -> List.map (fun sys -> (sys, b)) Runner.all_systems)
        (bench_list ())
    in
    let sw = Runner.run_sweep ~jobs:!jobs pairs in
    List.iter
      (fun (r : Runner.bench_result) ->
        Hashtbl.replace measured_table2 (r.Runner.br_bench, r.Runner.br_system) r.Runner.br_seconds;
        Hashtbl.replace measured_util (r.Runner.br_bench, r.Runner.br_system) r.Runner.br_util;
        Printf.printf "  (table2: %s on %s done)\n%!" r.Runner.br_bench r.Runner.br_system)
      sw.Runner.sw_results;
    sweep_state := Some sw
  end

let table2 () =
  section_header "Table 2: execution time (measured simulation vs paper)";
  run_table2 ();
  let systems = [ "Cinnamon-M"; "Cinnamon-4"; "Cinnamon-8"; "Cinnamon-12" ] in
  let others = [ "CraterLake"; "CiFHER"; "ARK"; "CPU" ] in
  let t =
    T.create ~title:"Execution time"
      ~header:("Benchmark" :: (List.concat_map (fun s -> [ s ^ " sim"; s ^ " paper" ]) systems
                               @ others))
      ~aligns:(T.Left :: List.init ((2 * List.length systems) + List.length others) (fun _ -> T.Right)) ()
  in
  List.iter
    (fun (b : Specs.benchmark) ->
      let cells =
        List.concat_map
          (fun s ->
            let sim =
              match Hashtbl.find_opt measured_table2 (b.Specs.bench_name, s) with
              | Some v -> T.fmt_time v
              | None -> "-"
            in
            let paper =
              match List.assoc_opt s b.Specs.paper_times with
              | Some v -> T.fmt_time v
              | None -> "-"
            in
            [ sim; paper ])
          systems
      in
      let other_cells =
        List.map
          (fun s ->
            match List.assoc_opt s b.Specs.paper_times with
            | Some v -> T.fmt_time v
            | None -> "-")
          others
      in
      T.add_row t ((b.Specs.bench_name :: cells) @ other_cells))
    (bench_list ());
  T.print t;
  match Hashtbl.find_opt measured_table2 ("BERT", "Cinnamon-12") with
  | Some bert12 ->
    let cpu = List.assoc "CPU" Specs.bert.Specs.paper_times in
    Printf.printf
      "BERT Cinnamon-12 speedup over 48-core CPU: %.0fx measured-vs-paper-CPU (paper: %.0fx)\n"
      (cpu /. bert12) PD.bert_speedup_vs_cpu
  | None -> ()

let fig11 () =
  section_header "Fig. 11: speedup normalized to CraterLake (small) / Cinnamon-M (BERT)";
  run_table2 ();
  List.iter
    (fun (b : Specs.benchmark) ->
      let base_name, base =
        match List.assoc_opt "CraterLake" b.Specs.paper_times with
        | Some v -> ("CraterLake(paper)", v)
        | None -> ("Cinnamon-M(sim)", Hashtbl.find measured_table2 (b.Specs.bench_name, "Cinnamon-M"))
      in
      let entries =
        List.filter_map
          (fun s ->
            match Hashtbl.find_opt measured_table2 (b.Specs.bench_name, s) with
            | Some v -> Some (s, base /. v)
            | None -> None)
          [ "Cinnamon-M"; "Cinnamon-4"; "Cinnamon-8"; "Cinnamon-12" ]
      in
      T.print_bar_chart
        ~title:(Printf.sprintf "%s (speedup over %s)" b.Specs.bench_name base_name)
        ~unit:"x" entries)
    (bench_list ())

let fig12 () =
  section_header "Fig. 12: relative performance per dollar";
  run_table2 ();
  let open Cinnamon_arch in
  List.iter
    (fun (b : Specs.benchmark) ->
      let points =
        List.filter_map
          (fun (sys, accel) ->
            match Hashtbl.find_opt measured_table2 (b.Specs.bench_name, sys) with
            | Some seconds ->
              Some (Perf_dollar.point ~name:sys ~seconds ~cost:(Yield.system_cost accel))
            | None -> None)
          [
            ("Cinnamon-M", Yield.cinnamon_m);
            ("Cinnamon-4", Yield.cinnamon_n 4);
            ("Cinnamon-8", Yield.cinnamon_n 8);
            ("Cinnamon-12", Yield.cinnamon_n 12);
          ]
      in
      let paper_points =
        List.filter_map
          (fun (name, accel) ->
            match List.assoc_opt name b.Specs.paper_times with
            | Some seconds -> Some (Perf_dollar.point ~name ~seconds ~cost:(Yield.system_cost accel))
            | None -> None)
          [ ("CraterLake", Yield.craterlake); ("CiFHER", Yield.cifher); ("ARK", Yield.ark) ]
      in
      let all = points @ paper_points in
      match all with
      | [] -> ()
      | _ ->
        let baseline =
          if List.exists (fun (p : Perf_dollar.point) -> p.Perf_dollar.pd_name = "CraterLake") all
          then "CraterLake"
          else "Cinnamon-M"
        in
        let rel = Perf_dollar.relative ~baseline all in
        T.print_bar_chart
          ~title:(Printf.sprintf "%s (perf/$ relative to %s)" b.Specs.bench_name baseline)
          ~unit:"x" rel)
    (bench_list ())

let fig15 () =
  section_header "Fig. 15: hardware utilization";
  run_table2 ();
  let t =
    T.create ~title:"Utilization (time-weighted across segments)"
      ~header:[ "Config"; "Benchmark"; "Compute"; "Memory"; "Network" ]
      ~aligns:[ T.Left; T.Left; T.Right; T.Right; T.Right ] ()
  in
  let pct v = Printf.sprintf "%.0f%%" (100.0 *. v) in
  let avg4 f =
    let vals =
      List.filter_map
        (fun (b : Specs.benchmark) ->
          Option.map f (Hashtbl.find_opt measured_util (b.Specs.bench_name, "Cinnamon-4")))
        Specs.all
    in
    Cinnamon_util.Stats.mean vals
  in
  T.add_row t [ "Cinnamon-4"; "all (avg)"; pct (avg4 (fun u -> u.Sim.compute));
                pct (avg4 (fun u -> u.Sim.memory)); pct (avg4 (fun u -> u.Sim.network)) ];
  List.iter
    (fun sys ->
      match Hashtbl.find_opt measured_util ("BERT", sys) with
      | Some u ->
        T.add_row t [ sys; "BERT"; pct u.Sim.compute; pct u.Sim.memory; pct u.Sim.network ]
      | None -> ())
    [ "Cinnamon-8"; "Cinnamon-12" ];
  T.print t

(* ----------------------------------------------------------------- Fig. 6 *)

let fig6 () =
  section_header "Fig. 6: bootstrap scaling vs cache capacity and compute";
  let t =
    T.create ~title:"Parallel bootstraps on one chip (1 TB/s HBM)"
      ~header:[ "Bootstraps"; "64MB"; "256MB"; "1GB"; "1GB/8cl" ]
      ~aligns:[ T.Left; T.Right; T.Right; T.Right; T.Right ] ()
  in
  let time ~parallel ~rf_mb ~clusters =
    let prog = Kernels.bootstrap_program ~parallel () in
    let cfg = CC.paper ~chips:1 ~rf_bytes:(rf_mb * 1024 * 1024) () in
    let r = Cinnamon_compiler.Pipeline.compile cfg prog in
    let sc = SC.fig6_chip ~rf_mb ~clusters in
    (Sim.run sc r.Cinnamon_compiler.Pipeline.machine).Sim.seconds
  in
  List.iter
    (fun parallel ->
      let row =
        string_of_int parallel
        :: List.map
             (fun (rf, cl) -> T.fmt_time (time ~parallel ~rf_mb:rf ~clusters:cl))
             [ (64, 4); (256, 4); (1024, 4); (1024, 8) ]
      in
      T.add_row t row;
      Printf.printf "  (fig6: %d bootstraps done)\n%!" parallel)
    [ 1; 2; 4; 8 ];
  T.print t;
  print_endline
    "Paper trends: small caches degrade linearly with bootstrap count; 1GB helps parallel\n\
     bootstraps ~5.6x at 8 bootstraps (shared evalkeys/plaintexts); extra clusters add ~1.6x."

(* ----------------------------------------------------------------- Fig. 13 *)

let fig13 () =
  section_header "Fig. 13: keyswitching techniques on Cinnamon-4, by link bandwidth";
  let seq =
    (Runner.simulate_kernel Runner.cinnamon_1 (Specs.K_bootstrap Kernels.boot_shape_13)).Sim.seconds
  in
  Printf.printf "Sequential (1 chip): %s\n%!" (T.fmt_time seq);
  let paper = CC.paper () in
  let variants =
    [
      ("CiFHER",
       { paper with CC.default_ks = Cinnamon_ir.Poly_ir.Cifher_broadcast;
         pass_mode = CC.No_pass });
      ("Input Broadcast",
       { paper with CC.default_ks = Cinnamon_ir.Poly_ir.Input_broadcast;
         pass_mode = CC.No_pass });
      ("Input Broadcast + Pass", { paper with CC.pass_mode = CC.Pass_ib_only });
      ("Cinnamon KS + Pass", paper);
      ("Cinnamon KS + Pass + ProgPar", { paper with CC.progpar = true });
    ]
  in
  let bandwidths = [ 256.0; 512.0; 1024.0 ] in
  let t =
    T.create ~title:"Speedup over Sequential (bootstrap)"
      ~header:(("Technique" :: List.map (fun b -> Printf.sprintf "%.0fGB/s" b) bandwidths)
               @ [ "paper@256" ])
      ~aligns:((T.Left :: List.map (fun _ -> T.Right) bandwidths) @ [ T.Right ]) ()
  in
  List.iter
    (fun (name, config) ->
      let compiled =
        Runner.compile_kernel ~config Runner.cinnamon_4 (Specs.K_bootstrap Kernels.boot_shape_13)
      in
      let speedups =
        List.map
          (fun bw ->
            let sc = SC.with_link_gbps SC.cinnamon_4 bw in
            let r = Sim.run sc compiled.Cinnamon_compiler.Pipeline.machine in
            seq /. r.Sim.seconds)
          bandwidths
      in
      let paper =
        match
          List.assoc_opt name
            [ ("CiFHER", 1.0 /. 2.14); ("Input Broadcast + Pass", 2.34);
              ("Cinnamon KS + Pass", 3.22); ("Cinnamon KS + Pass + ProgPar", 4.18) ]
        with
        | Some v -> T.fmt_ratio v
        | None -> "-"
      in
      T.add_row t ((name :: List.map T.fmt_ratio speedups) @ [ paper ]);
      Printf.printf "  (fig13: %s done)\n%!" name)
    variants;
  T.print t

(* ----------------------------------------------------------------- Fig. 14 *)

let fig14 () =
  section_header "Fig. 14: Bootstrap-13 vs Bootstrap-21 scaling";
  let seq shape =
    (Runner.simulate_kernel Runner.cinnamon_1 (Specs.K_bootstrap shape)).Sim.seconds
  in
  let t =
    T.create ~title:"Speedup over 1-chip sequential"
      ~header:[ "Config"; "Boot-13 sim"; "Boot-13 paper"; "Boot-21 sim"; "Boot-21 paper" ]
      ~aligns:[ T.Left; T.Right; T.Right; T.Right; T.Right ] ()
  in
  List.iter
    (fun (chips, topology) ->
      let sc =
        { (SC.cinnamon_chip ~chips ~topology) with SC.name = Printf.sprintf "Cinnamon-%d" chips }
      in
      let sys = Runner.make_system ~name:sc.SC.name ~group_chips:chips ~groups:1 sc in
      let config = { (CC.paper ()) with CC.progpar = true } in
      let cell shape =
        let seq_t = seq shape in
        let r = Runner.simulate_kernel ~config sys (Specs.K_bootstrap shape) in
        seq_t /. r.Sim.seconds
      in
      let p13 = List.assoc sc.SC.name (List.assoc "Bootstrap-13" PD.fig14) in
      let p21 = List.assoc sc.SC.name (List.assoc "Bootstrap-21" PD.fig14) in
      T.add_row t
        [ sc.SC.name; T.fmt_ratio (cell Kernels.boot_shape_13); T.fmt_ratio p13;
          T.fmt_ratio (cell Kernels.boot_shape_21); T.fmt_ratio p21 ];
      Printf.printf "  (fig14: %d chips done)\n%!" chips)
    [ (4, SC.Ring); (8, SC.Ring); (12, SC.Switch) ];
  T.print t

(* ----------------------------------------------------------------- Fig. 16 *)

let fig16 () =
  section_header "Fig. 16: sensitivity to halving/doubling resources (bootstrap, Cinnamon-4)";
  let kernel = Specs.K_bootstrap Kernels.boot_shape_13 in
  let base_r = Runner.compile_kernel Runner.cinnamon_4 kernel in
  let base_t = (Sim.run SC.cinnamon_4 base_r.Cinnamon_compiler.Pipeline.machine).Sim.seconds in
  let t =
    T.create ~title:"Speedup vs baseline Cinnamon-4 (1.0 = baseline)"
      ~header:[ "Resource"; "0.5x"; "2x" ] ~aligns:[ T.Left; T.Right; T.Right ] ()
  in
  let sim_with sc machine = (Sim.run sc machine).Sim.seconds in
  let rf_time factor =
    let rf = int_of_float (Float.of_int SC.cinnamon_4.SC.rf_bytes *. factor) in
    let r =
      Cinnamon_compiler.Pipeline.compile
        (CC.paper ~chips:4 ~rf_bytes:rf ())
        (Specs.kernel_program kernel)
    in
    sim_with (SC.with_rf_bytes SC.cinnamon_4 rf) r.Cinnamon_compiler.Pipeline.machine
  in
  T.add_row t
    [ "Register file"; T.fmt_ratio (base_t /. rf_time 0.5); T.fmt_ratio (base_t /. rf_time 2.0) ];
  Printf.printf "  (fig16: rf done)\n%!";
  let vary name f =
    T.add_row t
      [ name;
        T.fmt_ratio (base_t /. sim_with (f 0.5) base_r.Cinnamon_compiler.Pipeline.machine);
        T.fmt_ratio (base_t /. sim_with (f 2.0) base_r.Cinnamon_compiler.Pipeline.machine) ]
  in
  vary "Link bandwidth" (fun k -> SC.with_link_gbps SC.cinnamon_4 (SC.cinnamon_4.SC.link_gbps *. k));
  vary "Memory bandwidth" (fun k -> SC.with_hbm_gbps SC.cinnamon_4 (SC.cinnamon_4.SC.hbm_gbps *. k));
  vary "Vector width" (fun k ->
      SC.with_lanes SC.cinnamon_4
        (int_of_float (Float.of_int SC.cinnamon_4.SC.lanes_per_cluster *. k)));
  T.print t;
  print_endline
    "Paper: halving any resource costs 20-40% (geomean 32%); doubling gains 2-20% (geomean 10%)."

(* ------------------------------------------------------- s4.3.1 and s7.4 *)

let sec43 () =
  section_header "s4.3.1: keyswitch pass communication reduction per bootstrap";
  let bytes config =
    let r =
      Runner.compile_kernel ~config Runner.cinnamon_4 (Specs.K_bootstrap Kernels.boot_shape_13)
    in
    r.Cinnamon_compiler.Pipeline.comm.Cinnamon_ir.Limb_ir.bytes_moved
  in
  let paper = CC.paper () in
  let unopt =
    bytes
      { paper with CC.default_ks = Cinnamon_ir.Poly_ir.Cifher_broadcast; pass_mode = CC.No_pass }
  in
  let pass = bytes paper in
  let pass_pp = bytes { paper with CC.progpar = true } in
  Printf.printf "Unoptimized (CiFHER-style, no pass): %s\n" (T.fmt_bytes unopt);
  Printf.printf "Cinnamon keyswitch pass:             %s  (%.2fx reduction; paper: %.1fx)\n"
    (T.fmt_bytes pass)
    (Float.of_int unopt /. Float.of_int pass)
    PD.keyswitch_pass_comm_reduction;
  Printf.printf "+ program parallelism:               %s  (%.2fx reduction; paper: %.2fx)\n"
    (T.fmt_bytes pass_pp)
    (Float.of_int unopt /. Float.of_int pass_pp)
    PD.keyswitch_pass_comm_reduction_with_progpar

let sec74 () =
  section_header "s7.4: Cinnamon vs CiFHER keyswitching (Cinnamon-4, bootstrap)";
  let compiled config =
    Runner.compile_kernel ~config Runner.cinnamon_4 (Specs.K_bootstrap Kernels.boot_shape_13)
  in
  let paper = CC.paper () in
  let cifher =
    compiled
      { paper with CC.default_ks = Cinnamon_ir.Poly_ir.Cifher_broadcast; pass_mode = CC.No_pass }
  in
  let cinn = compiled paper in
  let traffic r = r.Cinnamon_compiler.Pipeline.comm.Cinnamon_ir.Limb_ir.bytes_moved in
  let time r = (Sim.run SC.cinnamon_4 r.Cinnamon_compiler.Pipeline.machine).Sim.seconds in
  let tr_ratio = Float.of_int (traffic cifher) /. Float.of_int (traffic cinn) in
  let sp_ratio = time cifher /. time cinn in
  Printf.printf "Inter-chip traffic: CiFHER %s vs Cinnamon %s -> %.2fx less (paper: %.2fx)\n"
    (T.fmt_bytes (traffic cifher)) (T.fmt_bytes (traffic cinn)) tr_ratio
    PD.cinnamon_vs_cifher_traffic;
  Printf.printf "Speedup: %.2fx (paper: %.2fx; %.2fx with program parallelism)\n" sp_ratio
    PD.cinnamon_vs_cifher_speedup PD.cinnamon_vs_cifher_speedup_progpar

(* ------------------------------------------------------------- ablations *)

(* Design-choice ablations DESIGN.md calls out:
   - the compact BCU (s4.7): half the lanes of the other FUs, trading
     base-conversion throughput for area/power;
   - the keyswitching digit count dnum: fewer digits = fewer, larger
     base conversions but bigger evalkeys (memory traffic). *)
let ablation () =
  section_header "Ablations: compact BCU and digit count (bootstrap, Cinnamon-4)";
  let kernel = Specs.K_bootstrap Kernels.boot_shape_13 in
  let base_r = Runner.compile_kernel Runner.cinnamon_4 kernel in
  let t_of sc = (Sim.run sc base_r.Cinnamon_compiler.Pipeline.machine).Sim.seconds in
  (* BCU lanes: 128 (Cinnamon) vs 256 (CraterLake-style) *)
  let t_bcu_128 = t_of SC.cinnamon_4 in
  let t_bcu_256 =
    t_of { SC.cinnamon_4 with SC.bcu_lanes_per_cluster = 256; name = "Cinnamon-4/fullBCU" }
  in
  let area_128 = Lazy.force Cinnamon_arch.Area.cinnamon_chip in
  let area_256 =
    Cinnamon_arch.Area.area_of
      { Cinnamon_arch.Area.cinnamon_chip_config with Cinnamon_arch.Area.bcu_lanes = 256 }
  in
  Printf.printf
    "BCU lanes 128 -> 256: time %s -> %s (%.1f%% faster), chip area %.2f -> %.2f mm^2 (+%.1f%%)
"
    (T.fmt_time t_bcu_128) (T.fmt_time t_bcu_256)
    (100.0 *. (1.0 -. (t_bcu_256 /. t_bcu_128)))
    area_128.Cinnamon_arch.Area.total_mm2 area_256.Cinnamon_arch.Area.total_mm2
    (100.0
    *. ((area_256.Cinnamon_arch.Area.total_mm2 /. area_128.Cinnamon_arch.Area.total_mm2) -. 1.0));
  Printf.printf
    "  (paper s4.7: halving the BCU trades some throughput for half its logic area/power)
";
  (* dnum: 2 / 3 / 4 digits *)
  let t = T.create ~title:"Digit-count ablation" ~header:[ "dnum"; "alpha"; "Time"; "Comm" ]
      ~aligns:[ T.Left; T.Right; T.Right; T.Right ] () in
  List.iter
    (fun dnum ->
      let alpha = Cinnamon_util.Bitops.cdiv 52 dnum in
      let cfg = { (CC.paper ~chips:4 ()) with CC.dnum; alpha } in
      let r = Cinnamon_compiler.Pipeline.compile cfg (Specs.kernel_program kernel) in
      let res = Sim.run SC.cinnamon_4 r.Cinnamon_compiler.Pipeline.machine in
      T.add_row t
        [ string_of_int dnum; string_of_int alpha; T.fmt_time res.Sim.seconds;
          T.fmt_bytes r.Cinnamon_compiler.Pipeline.comm.Cinnamon_ir.Limb_ir.bytes_moved ];
      Printf.printf "  (ablation: dnum=%d done)
%!" dnum)
    [ 2; 3; 4 ];
  T.print t

(* ------------------------------------------------- workload characterization *)

(* The paper's motivation data (§3): wider models need more ciphertexts,
   deeper models more bootstraps.  Characterize each benchmark's kernels
   as compiled. *)
let characterize () =
  section_header "Workload characterization (compiled kernels, Cinnamon-4)";
  let t =
    T.create ~title:"Kernel statistics"
      ~header:[ "Kernel"; "Ct ops"; "Keyswitches"; "Ct-muls"; "Rotations"; "Pt-muls"; "ISA instrs"; "Comm" ]
      ~aligns:(T.Left :: List.init 7 (fun _ -> T.Right)) ()
  in
  List.iter
    (fun k ->
      let prog = Specs.kernel_program k in
      let c = Cinnamon_ir.Ct_ir.count_ops prog in
      let r = Runner.compile_kernel Runner.cinnamon_4 k in
      let instrs =
        Array.fold_left
          (fun a p -> a + Array.length p.Cinnamon_isa.Isa.instrs)
          0 r.Cinnamon_compiler.Pipeline.machine.Cinnamon_isa.Isa.programs
      in
      T.add_row t
        [ Specs.kernel_name k; string_of_int (Cinnamon_ir.Ct_ir.size prog);
          string_of_int (Cinnamon_ir.Ct_ir.keyswitch_count prog);
          string_of_int c.Cinnamon_ir.Ct_ir.n_mul_ct; string_of_int c.Cinnamon_ir.Ct_ir.n_rotate;
          string_of_int c.Cinnamon_ir.Ct_ir.n_mul_plain; string_of_int instrs;
          T.fmt_bytes r.Cinnamon_compiler.Pipeline.comm.Cinnamon_ir.Limb_ir.bytes_moved ];
      Printf.printf "  (characterize: %s done)\n%!" (Specs.kernel_name k))
    (List.map snd Specs.kernels);
  T.print t;
  (* the paper's §3.1 data points *)
  Printf.printf
    "Paper motivation: BERT needs 3 cts per 128-token tensor and ~1,400 bootstraps;\n\
     ResNet-20 fits one ct and ~50 bootstraps (reproduced in Specs and its tests).\n"

(* ----------------------------------------------------------------- energy *)

(* Benchmark energy from the power model (the paper reports 190 W per
   chip from synthesis; our budget reproduces that peak and splits it
   across datapath, HBM, links and static draw). *)
let energy () =
  section_header "Energy: per-benchmark energy on Cinnamon-4 (power model)";
  let open Cinnamon_arch in
  Printf.printf "modeled peak chip power: %.0f W (paper: 190 W)\n"
    (Power.peak_watts Power.cinnamon_chip ~hbm_gbps:2048.0 ~link_gbps:256.0);
  let t =
    T.create ~title:"Bootstrap energy by configuration"
      ~header:[ "Config"; "Time"; "Energy"; "Avg W/chip"; "Compute J"; "HBM J"; "Link J"; "Static J" ]
      ~aligns:[ T.Left; T.Right; T.Right; T.Right; T.Right; T.Right; T.Right; T.Right ] ()
  in
  List.iter
    (fun (sys, sc) ->
      let r = Runner.simulate_kernel sys (Specs.K_bootstrap Kernels.boot_shape_13) in
      let e = Power.of_simulation Power.cinnamon_chip sc r in
      let part name = List.assoc name e.Power.breakdown in
      T.add_row t
        [ sys.Runner.sys_name; T.fmt_time r.Sim.seconds;
          Printf.sprintf "%.3f J" e.Power.joules; Printf.sprintf "%.0f" e.Power.avg_watts;
          Printf.sprintf "%.3f" (part "compute"); Printf.sprintf "%.3f" (part "hbm");
          Printf.sprintf "%.3f" (part "links"); Printf.sprintf "%.3f" (part "static") ])
    [ (Runner.cinnamon_1, SC.cinnamon_1); (Runner.cinnamon_4, SC.cinnamon_4) ];
  T.print t

(* ---------------------------------------------- graph front-end (lib/nn) *)

type nn_entry = {
  ne_workload : string;
  ne_compile_ms : float; (* plan + lower wall time *)
  ne_rot_planned : int;
  ne_ks_planned : int;
  ne_rot_naive : int option; (* all-column packing; None where not pow2-legal *)
  ne_cycles : int; (* simulated on Cinnamon-4 *)
}

let nn_entries : nn_entry list ref = ref []

(* The packing optimizer against naive column packing, per graph
   workload: planned rotations/keyswitches, compile (plan+lower) time,
   and simulated Cinnamon-4 cycles.  The bert-encoder advantage is a
   hard gate — the section fails if the cost model stops beating the
   naive baseline there. *)
let nn () =
  section_header "Graph front-end: packing optimizer vs naive column packing (Cinnamon-4)";
  let open Cinnamon_nn in
  let t =
    T.create ~title:"Graph workloads"
      ~header:[ "Workload"; "Compile"; "Rotations"; "Keyswitches"; "Naive rot"; "Cycles" ]
      ~aligns:(T.Left :: List.init 5 (fun _ -> T.Right)) ()
  in
  List.iter
    (fun (name, k) ->
      let g = match k with Specs.K_graph g -> g | _ -> assert false in
      let t0 = Unix.gettimeofday () in
      let plan = Plan.make g in
      let prog = Lower.lower ~plan g in
      let compile_ms = 1e3 *. (Unix.gettimeofday () -. t0) in
      ignore prog;
      let naive =
        match Plan.make ~policy:Plan.Naive_column g with
        | p -> Some p.Plan.pl_rotations
        | exception Invalid_argument _ -> None (* non-pow2 layer: column illegal *)
      in
      let res = Runner.simulate_kernel Runner.cinnamon_4 k in
      (match (name, naive) with
      | "bert-encoder", Some n when plan.Plan.pl_rotations >= n ->
        failwith
          (Printf.sprintf
             "nn section: planner no longer beats naive column packing on %s (%d >= %d rotations)"
             name plan.Plan.pl_rotations n)
      | "bert-encoder", None -> failwith "nn section: bert-encoder lost its naive baseline"
      | _ -> ());
      T.add_row t
        [ name; Printf.sprintf "%.1f ms" compile_ms;
          string_of_int plan.Plan.pl_rotations;
          string_of_int (Plan.keyswitches plan);
          (match naive with Some n -> string_of_int n | None -> "-");
          string_of_int res.Sim.cycles ];
      nn_entries :=
        {
          ne_workload = name;
          ne_compile_ms = compile_ms;
          ne_rot_planned = plan.Plan.pl_rotations;
          ne_ks_planned = Plan.keyswitches plan;
          ne_rot_naive = naive;
          ne_cycles = res.Sim.cycles;
        }
        :: !nn_entries)
    Specs.graph_kernels;
  T.print t

(* --------------------------------------------------------- microbenchmarks *)

(* Plain wall-clock microbenchmarks plus a Bechamel pass on the NTT.
   The measured NTT throughput calibrates the CPU column of Table 2
   (see Cpu_model). *)
let micro () =
  section_header "Microbenchmarks: functional OCaml kernels";
  let open Cinnamon_rns in
  let time_it ?(reps = 20) f =
    ignore (f ());
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      ignore (f ())
    done;
    (Unix.gettimeofday () -. t0) /. Float.of_int reps
  in
  let n = 1 lsl 12 in
  let q = List.hd (Prime_gen.gen_primes ~bits:28 ~n ~count:1 ()) in
  let plan = Ntt.plan ~q ~n in
  let rng = Cinnamon_util.Rng.create ~seed:1 in
  let a = Limb_buf.init n (fun _ -> Cinnamon_util.Rng.int rng q) in
  let ntt_dst = Limb_buf.create n in
  let params = Lazy.force Cinnamon_ckks.Params.small in
  let sk = Cinnamon_ckks.Keys.gen_secret_key params rng in
  let relin = Cinnamon_ckks.Keys.gen_relin_key params sk rng in
  let c =
    Rns_poly.random ~n:params.Cinnamon_ckks.Params.n ~basis:params.Cinnamon_ckks.Params.q_basis
      ~domain:Rns_poly.Eval rng
  in
  let ext = params.Cinnamon_ckks.Params.p_basis in
  let cc = Rns_poly.to_coeff c in
  let ntt_s = time_it ~reps:200 (fun () -> Ntt.forward_into plan ~src:a ~dst:ntt_dst) in
  Printf.printf "  %-28s %10.1f us/op\n" (Printf.sprintf "ntt (N=%d)" n) (ntt_s *. 1e6);
  Printf.printf "  %-28s %10.1f us/op\n" "base-conv (9->3 limbs)"
    (1e6 *. time_it (fun () -> Base_conv.convert cc ~dst:ext));
  Printf.printf "  %-28s %10.1f us/op\n" "keyswitch (seq, N=1024,L=9)"
    (1e6 *. time_it ~reps:5 (fun () -> Cinnamon_ckks.Keyswitch.keyswitch params relin c));
  Printf.printf "  %-28s %10.1f us/op\n" "rescale"
    (1e6 *. time_it (fun () -> Cinnamon_ckks.Eval.rescale_poly c));
  (* Bechamel cross-check on the NTT *)
  (let open Bechamel in
   let test =
     Test.make ~name:"ntt" (Staged.stage (fun () -> Ntt.forward_into plan ~src:a ~dst:ntt_dst))
   in
   let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
   let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] (Test.make_grouped ~name:"rns" [ test ]) in
   let ols =
     Analyze.all
       (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
       Toolkit.Instance.monotonic_clock raw
   in
   Hashtbl.iter
     (fun name result ->
       match Analyze.OLS.estimates result with
       | Some [ est ] -> Printf.printf "  bechamel %-19s %10.1f us/op\n" name (est /. 1e3)
       | _ -> ())
     ols);
  (* CPU-column calibration *)
  let boot =
    Cinnamon_sim.Cpu_model.extrapolate_from_measured ~seconds_per_ntt:ntt_s ~n_meas:n ~cores:48
  in
  Printf.printf
    "Extrapolated 48-core CPU bootstrap (from measured OCaml NTT): %s (paper-reported: 33 s)\n"
    (T.fmt_time boot);
  Printf.printf "Analytic 48-core CPU bootstrap: %s\n"
    (T.fmt_time Cinnamon_sim.Cpu_model.analytic_bootstrap_seconds)

(* ------------------------------------------------- kernel microbenchmarks *)

(* The RNS/NTT kernel layer, timed at paper-class parameter points and
   recorded into BENCH_cinnamon.json (kernel_microbench section) so
   per-kernel throughput has a trajectory across commits.  Full mode
   runs the paper's N = 2^16 ring; --quick drops to N = 2^12 for CI.

   The automorphism entry also checks the Eval-domain permutation
   against the Coeff-domain oracle and FAILS the run on any mismatch —
   CI treats microbench errors as job failures. *)

type micro_entry = {
  me_kernel : string;
  me_n : int;
  me_limbs : int;
  me_us : float;
  me_bytes : int; (* bytes streamed per op; 0 = not a bandwidth kernel *)
}

let micro_entries : micro_entry list ref = ref []

(* Effective memory bandwidth of one op: bytes streamed / wall time. *)
let gbps_of ~bytes us = if bytes = 0 || us <= 0.0 then 0.0 else Float.of_int bytes /. us /. 1000.0

let record_micro ?(bytes = 0) ~kernel ~n ~limbs us =
  micro_entries :=
    { me_kernel = kernel; me_n = n; me_limbs = limbs; me_us = us; me_bytes = bytes }
    :: !micro_entries;
  let bw = if bytes = 0 then "" else Printf.sprintf "  %6.2f GB/s" (gbps_of ~bytes us) in
  Printf.printf "  %-34s %12.2f us/op%s  (N=2^%d, limbs=%d)\n%!" kernel us bw
    (Cinnamon_util.Bitops.log2_exact n)
    limbs

let kernels () =
  section_header
    (Printf.sprintf "Kernel microbenchmarks: RNS/NTT kernel layer (N=%s)"
       (if !quick then "2^12, quick" else "2^16, paper-class"));
  let open Cinnamon_rns in
  let time_it ?(reps = 10) f =
    ignore (f ());
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      ignore (f ())
    done;
    (Unix.gettimeofday () -. t0) /. Float.of_int reps
  in
  let n = if !quick then 1 lsl 12 else 1 lsl 16 in
  let limbs = if !quick then 3 else 6 in
  let reps = if !quick then 20 else 4 in
  let qs = Prime_gen.gen_primes ~bits:28 ~n ~count:limbs () in
  let basis = Basis.of_primes qs in
  let rng = Cinnamon_util.Rng.create ~seed:7 in
  (* Worker pool for the domain-parallel kernel paths (--jobs N with
     N > 1); the kernels are bit-identical with and without it.
     Requests beyond the host's core count are clamped: oversubscribed
     domains only add scheduling overhead to a throughput measurement
     (the determinism tests still force the split with explicit
     pools whatever the host). *)
  let eff_jobs = min !jobs (Exec.Pool.default_jobs ()) in
  let pool = if eff_jobs > 1 then Some (Exec.Pool.create ~jobs:eff_jobs ()) else None in
  if !jobs > eff_jobs then
    Printf.printf "  (--jobs %d clamped to %d host cores)\n%!" !jobs eff_jobs;
  if pool <> None then Printf.printf "  (domain-parallel kernels: %d jobs)\n%!" eff_jobs;
  (* single-limb NTT passes, into a reused scratch buffer *)
  let q = List.hd qs in
  let plan = Ntt.plan ~q ~n in
  let a = Limb_buf.init n (fun _ -> Cinnamon_util.Rng.int rng q) in
  let scratch = Limb_buf.create n in
  let log2n = Cinnamon_util.Bitops.log2_exact n in
  (* per stage: n limb reads + n limb writes, log2(n) stages *)
  let ntt_bytes = 16 * n * log2n in
  record_micro ~kernel:"ntt_forward" ~n ~limbs:1 ~bytes:ntt_bytes
    (1e6 *. time_it ~reps:(reps * 8) (fun () -> Ntt.forward_into ?pool plan ~src:a ~dst:scratch));
  record_micro ~kernel:"ntt_inverse" ~n ~limbs:1 ~bytes:ntt_bytes
    (1e6 *. time_it ~reps:(reps * 8) (fun () -> Ntt.inverse_into ?pool plan ~src:a ~dst:scratch));
  (* full-width pointwise product, into a preallocated destination *)
  let x = Rns_poly.random ~n ~basis ~domain:Rns_poly.Eval rng in
  let y = Rns_poly.random ~n ~basis ~domain:Rns_poly.Eval rng in
  let z = Rns_poly.zero ~n ~basis in
  record_micro ~kernel:"pointwise_mul_into" ~n ~limbs ~bytes:(3 * 8 * limbs * n)
    (1e6 *. time_it ~reps (fun () -> Rns_poly.mul_into ~dst:z x y));
  (* base conversion into a 3-limb special basis (the keyswitch mod-up
     shape: every source limb feeds every destination limb) *)
  let ext = Basis.of_primes (Prime_gen.gen_primes ~bits:30 ~n ~count:3 ~avoid:qs ()) in
  let ext_limbs = Basis.size ext in
  let xc = Rns_poly.to_coeff x in
  (* stage 1 streams l limbs in+out; stage 2 reads all l scaled limbs
     per output column and writes m columns *)
  let bc_bytes = 8 * ((2 * limbs * n) + (ext_limbs * limbs * n) + (ext_limbs * n)) in
  record_micro ~kernel:"base_conv" ~n ~limbs ~bytes:bc_bytes
    (1e6 *. time_it ~reps (fun () -> ignore (Base_conv.convert ?pool xc ~dst:ext)));
  (* automorphism: Eval-domain permutation vs the INTT/NTT round-trip
     the seed performed (kept here as the oracle path) *)
  let k = Cinnamon_ckks.Keys.galois_of_rotation ~n 1 in
  let oracle () = Rns_poly.to_eval (Rns_poly.automorphism (Rns_poly.to_coeff x) ~k) in
  let eval_us = 1e6 *. time_it ~reps (fun () -> Rns_poly.automorphism x ~k) in
  let coeff_us = 1e6 *. time_it ~reps oracle in
  record_micro ~kernel:"automorphism_eval" ~n ~limbs ~bytes:(2 * 8 * limbs * n) eval_us;
  record_micro ~kernel:"automorphism_coeff_roundtrip" ~n ~limbs coeff_us;
  record_micro ~kernel:"automorphism_speedup_x" ~n ~limbs (coeff_us /. eval_us);
  Printf.printf "  automorphism Eval-path speedup: %.1fx over the INTT/NTT round-trip\n%!"
    (coeff_us /. eval_us);
  if not (Rns_poly.equal (Rns_poly.automorphism x ~k) (oracle ())) then
    failwith "kernel microbench: Eval-domain automorphism diverged from the Coeff oracle";
  (* keyswitch: the fused streaming engine (Keyswitch_fused) against
     the sequential oracle it must match bitwise — the run FAILS on any
     divergence, so this doubles as an end-to-end numeric gate.  The
     Params.small entry keeps the historical name and shape
     ("keyswitch", N=1024, limbs=9) for check_kernels and the
     cross-commit trajectory; a second entry exercises the sweep ring
     (N=2^12 quick / N=2^16 full) at a registered parameter point. *)
  let bench_keyswitch tag params =
    let open Cinnamon_ckks in
    let nn = params.Params.n in
    let krng = Cinnamon_util.Rng.create ~seed:8 in
    let sk = Keys.gen_secret_key params krng in
    let relin = Keys.gen_relin_key params sk krng in
    let c = Rns_poly.random ~n:nn ~basis:params.Params.q_basis ~domain:Rns_poly.Eval krng in
    let k0f, k1f = Keyswitch_fused.keyswitch ?pool params relin c in
    let k0o, k1o = Keyswitch.keyswitch params relin c in
    if not (Rns_poly.equal k0f k0o && Rns_poly.equal k1f k1o) then
      failwith "kernel microbench: fused keyswitch diverged from the sequential oracle";
    let tq = Basis.size params.Params.q_basis in
    let alpha = params.Params.alpha and dnum = params.Params.dnum in
    let t = tq + alpha in
    (* coarse streamed-words model of the fused dataflow: decompose
       (tq limbs in+out), conversion columns ((dnum*t - tq) columns,
       each reading ~alpha scaled limbs), the MAC streams (per target
       limb: dnum ext + 2*dnum key reads + 2 accumulator writes), and
       the fused mod-down (2 accumulators) *)
    let words =
      (2 * tq)
      + (((dnum * t) - tq) * (alpha + 1))
      + (t * ((3 * dnum) + 2))
      + (2 * ((2 * alpha) + (tq * (alpha + 3))))
    in
    let ks_reps = if nn >= 65536 then 3 else 5 in
    let fused_us =
      1e6 *. time_it ~reps:ks_reps (fun () -> Keyswitch_fused.keyswitch ?pool params relin c)
    in
    let oracle_us = 1e6 *. time_it ~reps:ks_reps (fun () -> Keyswitch.keyswitch params relin c) in
    record_micro ~kernel:tag ~n:nn ~limbs:tq ~bytes:(8 * nn * words) fused_us;
    record_micro ~kernel:(tag ^ "_oracle") ~n:nn ~limbs:tq oracle_us;
    record_micro ~kernel:(tag ^ "_speedup_x") ~n:nn ~limbs:tq (oracle_us /. fused_us)
  in
  bench_keyswitch "keyswitch" (Lazy.force Cinnamon_ckks.Params.small);
  bench_keyswitch "keyswitch"
    (Lazy.force (if !quick then Cinnamon_ckks.Params.medium else Cinnamon_ckks.Params.large));
  (* hoisted rotations: k rotations from ONE shared decomposition
     (Halevi-Shoup through the fused engine: per rotation a permuted
     MAC + mod-down) vs k independent Eval.rotate keyswitches *)
  let open Cinnamon_ckks in
  let hparams = Lazy.force Params.small in
  let hrng = Cinnamon_util.Rng.create ~seed:9 in
  let hsk = Keys.gen_secret_key hparams hrng in
  let rots = [ 1; 2; 3; 4 ] in
  let hek = Keys.provision hparams hsk ~rotations:rots ~conjugation:false hrng in
  let hn = hparams.Params.n in
  let hct =
    Ciphertext.make
      ~c0:(Rns_poly.random ~n:hn ~basis:hparams.Params.q_basis ~domain:Rns_poly.Eval hrng)
      ~c1:(Rns_poly.random ~n:hn ~basis:hparams.Params.q_basis ~domain:Rns_poly.Eval hrng)
      ~scale:hparams.Params.scale ~slots:hparams.Params.slots
  in
  let hctx = Eval.context ?pool hparams hek in
  let nrot = List.length rots in
  let hoisted_us =
    1e6 *. time_it ~reps:5 (fun () -> ignore (Hoisting.rotate_many ?pool hparams hek hct rots))
  in
  let plain_us =
    1e6 *. time_it ~reps:5 (fun () -> List.iter (fun r -> ignore (Eval.rotate hctx hct r)) rots)
  in
  record_micro ~kernel:"hoisted_rotate4" ~n:hn ~limbs:(Basis.size hparams.Params.q_basis)
    hoisted_us;
  record_micro ~kernel:"rotate4_unhoisted" ~n:hn ~limbs:(Basis.size hparams.Params.q_basis)
    plain_us;
  record_micro ~kernel:"hoisted_speedup_x" ~n:hn ~limbs:(Basis.size hparams.Params.q_basis)
    (plain_us /. hoisted_us);
  Printf.printf "  hoisted: %d rotations in %.0f us vs %.0f us unhoisted (%.2fx)\n%!" nrot
    hoisted_us plain_us (plain_us /. hoisted_us);
  Option.iter Exec.Pool.shutdown pool

(* ------------------------------------------------------- serving layer *)

(* The encrypted-inference serving load test (lib/serve): Poisson
   open-loop arrivals played through the admission queue, dynamic
   batcher and virtual-time scheduler, with real compile+simulate work
   behind each batch.  Records latency percentiles, goodput and shed
   rate into BENCH_cinnamon.json (serve_loadtest section) so the
   serving SLOs have a trajectory across commits. *)

let serve_results : Cinnamon_serve.Loadgen.result list ref = ref []

let serve () =
  section_header
    (Printf.sprintf "Serving load test (%s preset)" (if !quick then "quick" else "default"));
  let open Cinnamon_serve in
  let base = if !quick then Loadgen.quick else Loadgen.default in
  let cfg = { base with Loadgen.lg_jobs = !jobs } in
  let r = Loadgen.run cfg in
  Loadgen.print_result r;
  serve_results := !serve_results @ [ r ];
  let rp = r.Loadgen.lr_report in
  if rp.Slo.rp_completed > 0 && rp.Slo.rp_compiles >= rp.Slo.rp_admitted then
    Printf.printf
      "  WARNING: batching did not amortize compiles (%d compiles for %d admitted)\n%!"
      rp.Slo.rp_compiles rp.Slo.rp_admitted

(* The fleet-scale serving sweep (lib/fleet): scaling-efficiency curves
   per routing policy under Poisson and diurnal traces, plus the
   autoscaler demo.  The standard preset keeps the harness's wall time
   bounded; the full 1..64-node million-request sweep runs via
   `cinnamon serve-fleet`. *)

let fleet_result : Cinnamon_fleet.Fleet_bench.result option ref = ref None

let fleet () =
  section_header
    (Printf.sprintf "Serving fleet sweep (%s preset)" (if !quick then "quick" else "standard"));
  let open Cinnamon_fleet in
  let base = Fleet_bench.quick in
  let cfg =
    if !quick then { base with Fleet_bench.fb_jobs = !jobs }
    else
      { base with Fleet_bench.fb_nodes = [ 1; 2; 4; 8; 16 ]; fb_requests = 6_000; fb_jobs = !jobs }
  in
  let r = Fleet_bench.run cfg in
  Fleet_bench.print_result r;
  fleet_result := Some r;
  (* the locality curve exists to beat round-robin on warm-key hits *)
  let hit_rate policy =
    let pts = List.filter (fun p -> p.Fleet_bench.pt_policy = policy) r.Fleet_bench.fbr_points in
    if pts = [] then 0.0
    else
      List.fold_left (fun acc p -> acc +. p.Fleet_bench.pt_key_hit_rate) 0.0 pts
      /. Float.of_int (List.length pts)
  in
  let loc = hit_rate "locality" and rr = hit_rate "round_robin" in
  Printf.printf "\nmean key hit rate: locality %.1f%%, round_robin %.1f%%\n" (100.0 *. loc)
    (100.0 *. rr);
  if loc <= rr then
    Printf.printf "  WARNING: locality routing did not beat round-robin on warm-key hits\n%!"

(* ------------------------------------------------------ perf trajectory *)

(* BENCH_cinnamon.json: the machine-readable record of the sweep — one
   entry per (benchmark, system) and per distinct simulated kernel,
   plus cache effectiveness and wall-clock.  Consumed by CI (uploaded
   as an artifact) to track the perf trajectory across commits. *)
let write_bench_json file ~wall_seconds =
  if !sweep_state = None && !micro_entries = [] && !serve_results = [] && !fleet_result = None
     && !nn_entries = []
  then ()
    (* no sweep, kernel microbench or serving section ran; nothing to record *)
  else begin
    let st = Exec.Result_cache.stats () in
    let lookups = st.Exec.Result_cache.hits + st.Exec.Result_cache.disk_hits + st.Exec.Result_cache.misses in
    let hit_rate =
      if lookups = 0 then 0.0
      else
        Float.of_int (st.Exec.Result_cache.hits + st.Exec.Result_cache.disk_hits) /. Float.of_int lookups
    in
    let sw_kernels = match !sweep_state with Some sw -> sw.Runner.sw_kernels | None -> [] in
    let sw_results = match !sweep_state with Some sw -> sw.Runner.sw_results | None -> [] in
    let jobs_used = match !sweep_state with Some sw -> sw.Runner.sw_jobs | None -> !jobs in
    let j =
        [
          ("schema", Json.Str "cinnamon-bench-v1");
          ("generated_by", Json.Str "bench/main");
          ("jobs", Json.Int jobs_used);
          ("quick", Json.Bool !quick);
          ("wall_seconds", Json.Float wall_seconds);
          ( "cache",
            Json.Obj
              [
                ("hits", Json.Int st.Exec.Result_cache.hits);
                ("disk_hits", Json.Int st.Exec.Result_cache.disk_hits);
                ("misses", Json.Int st.Exec.Result_cache.misses);
                ("stores", Json.Int st.Exec.Result_cache.stores);
                ("hit_rate", Json.Float hit_rate);
              ] );
          ( "kernels",
            Json.List
              (List.map
                 (fun (k : Runner.kernel_time) ->
                   Json.Obj
                     [
                       ("kernel", Json.Str k.Runner.kt_kernel);
                       ("system", Json.Str k.Runner.kt_system);
                       ("cycles", Json.Int k.Runner.kt_result.Sim.cycles);
                       ("seconds", Json.Float k.Runner.kt_result.Sim.seconds);
                     ])
                 sw_kernels) );
          ( "benchmarks",
            Json.List
              (List.map
                 (fun (r : Runner.bench_result) ->
                   Json.Obj
                     [
                       ("bench", Json.Str r.Runner.br_bench);
                       ("system", Json.Str r.Runner.br_system);
                       ("seconds", Json.Float r.Runner.br_seconds);
                     ])
                 sw_results) );
          (* wall-clock of the functional OCaml kernels (kernels
             section) — distinct from "kernels" above, which holds
             simulated accelerator cycles *)
          ( "kernel_microbench",
            Json.List
              (List.rev_map
                 (fun e ->
                   Json.Obj
                     ([
                        ("kernel", Json.Str e.me_kernel);
                        ("n", Json.Int e.me_n);
                        ("limbs", Json.Int e.me_limbs);
                        ("us_per_op", Json.Float e.me_us);
                      ]
                     @
                     if e.me_bytes = 0 then []
                     else [ ("gbps", Json.Float (gbps_of ~bytes:e.me_bytes e.me_us)) ]))
                 !micro_entries) );
          (* graph front-end (nn section): packing-optimizer results *)
          ( "nn_frontend",
            Json.List
              (List.rev_map
                 (fun e ->
                   Json.Obj
                     ([
                        ("workload", Json.Str e.ne_workload);
                        ("compile_ms", Json.Float e.ne_compile_ms);
                        ("rotations_planned", Json.Int e.ne_rot_planned);
                        ("keyswitches_planned", Json.Int e.ne_ks_planned);
                        ("cycles", Json.Int e.ne_cycles);
                      ]
                     @
                     match e.ne_rot_naive with
                     | Some n -> [ ("rotations_naive_column", Json.Int n) ]
                     | None -> []))
                 !nn_entries) );
          (* serving-layer SLOs (serve section), keyed by client model *)
          ( "serve_loadtest",
            Json.Obj
              (List.map
                 (fun (r : Cinnamon_serve.Loadgen.result) ->
                   (r.Cinnamon_serve.Loadgen.lr_mode, Cinnamon_serve.Loadgen.result_json r))
                 !serve_results) );
        ]
        @
        (* fleet-scale serving sweep (fleet section) *)
        match !fleet_result with
        | None -> []
        | Some r -> [ ("serve_fleet", Cinnamon_fleet.Fleet_bench.result_json r) ]
    in
    let j = Json.Obj j in
    let oc = open_out file in
    output_string oc (Json.to_string j);
    output_char oc '\n';
    close_out oc;
    Printf.printf
      "bench: wrote %s (%d kernels, %d benchmark points, %d microbench entries, %.0f%% cache hit rate)\n%!"
      file (List.length sw_kernels) (List.length sw_results)
      (List.length !micro_entries) (100.0 *. hit_rate)
  end

(* --------------------------------------------------------------- dispatch *)

let sections =
  [
    ("table1", table1); ("table3", table3); ("table2", table2); ("fig6", fig6);
    ("fig11", fig11); ("fig12", fig12); ("fig13", fig13); ("fig14", fig14);
    ("fig15", fig15); ("fig16", fig16); ("sec43", sec43); ("sec74", sec74);
    ("ablation", ablation); ("characterize", characterize); ("energy", energy);
    ("micro", micro); ("kernels", kernels); ("nn", nn); ("serve", serve); ("fleet", fleet);
  ]

let () =
  let t0 = Unix.gettimeofday () in
  let bench_out = ref "BENCH_cinnamon.json" in
  let split_eq flag s =
    (* "--flag=value" -> Some value *)
    let p = flag ^ "=" in
    let lp = String.length p in
    if String.length s > lp && String.sub s 0 lp = p then
      Some (String.sub s lp (String.length s - lp))
    else None
  in
  let bad_arg s =
    Printf.eprintf "bad argument %s\n" s;
    exit 2
  in
  let rec parse_args acc trace metrics = function
    | [] -> (List.rev acc, trace, metrics)
    | "--metrics" :: rest -> parse_args acc trace true rest
    | "--quick" :: rest ->
      quick := true;
      parse_args acc trace metrics rest
    | "--jobs" :: n :: rest -> (
      match int_of_string_opt n with
      | Some n -> jobs := n; parse_args acc trace metrics rest
      | None -> bad_arg ("--jobs " ^ n))
    | "--cache-dir" :: dir :: rest ->
      Exec.Result_cache.set_dir (Some dir);
      parse_args acc trace metrics rest
    | "--bench-out" :: file :: rest ->
      bench_out := file;
      parse_args acc trace metrics rest
    | "--trace" :: file :: rest -> parse_args acc (Some file) metrics rest
    | s :: rest when split_eq "--trace" s <> None ->
      parse_args acc (split_eq "--trace" s) metrics rest
    | s :: rest when split_eq "--jobs" s <> None -> (
      match int_of_string_opt (Option.get (split_eq "--jobs" s)) with
      | Some n -> jobs := n; parse_args acc trace metrics rest
      | None -> bad_arg s)
    | s :: rest when split_eq "--cache-dir" s <> None ->
      Exec.Result_cache.set_dir (split_eq "--cache-dir" s);
      parse_args acc trace metrics rest
    | s :: rest when split_eq "--bench-out" s <> None ->
      bench_out := Option.get (split_eq "--bench-out" s);
      parse_args acc trace metrics rest
    | s :: rest -> parse_args (s :: acc) trace metrics rest
  in
  let requested, trace, metrics = parse_args [] None false (List.tl (Array.to_list Sys.argv)) in
  let requested =
    if requested = [] && !quick then [ "table2"; "kernels"; "nn"; "serve"; "fleet" ]
    else requested
  in
  if trace <> None || metrics then Tel.enable ();
  let to_run =
    if requested = [] then sections
    else
      List.filter_map
        (fun name ->
          match List.assoc_opt name sections with
          | Some f -> Some (name, f)
          | None ->
            Printf.eprintf "unknown section %s\n" name;
            None)
        requested
  in
  List.iter
    (fun (name, f) ->
      let t = Unix.gettimeofday () in
      Tel.Span.with_ ~cat:"bench" ("section:" ^ name) f;
      Printf.printf "[%s finished in %.1fs]\n%!" name (Unix.gettimeofday () -. t))
    to_run;
  let wall_seconds = Unix.gettimeofday () -. t0 in
  Printf.printf "\nAll sections done in %.1fs\n" wall_seconds;
  if !bench_out <> "-" then write_bench_json !bench_out ~wall_seconds;
  (match trace with
  | Some file -> (
    try
      Tel.write_chrome_trace file;
      Printf.printf "trace: wrote %d events to %s\n" (Tel.event_count ()) file
    with Sys_error msg -> Printf.eprintf "error: cannot write trace file: %s\n" msg)
  | None -> ());
  if metrics then begin
    print_newline ();
    print_string (Tel.report ())
  end
