(* The cinnamon command-line tool.

   Subcommands:
     compile   — compile a named kernel for a chip count; print pipeline
                 statistics, the keyswitch-pass report, and optionally
                 the ISA histogram
     simulate  — compile + cycle-simulate a kernel on a configuration
     bench     — run a paper benchmark (bootstrap/resnet/helr/bert) on a
                 system and report time and utilization
     arch      — print the area and yield/cost models (Tables 1 and 3)

   Kernel, benchmark and system names resolve through the registries in
   Cinnamon_workloads (Specs.kernels/benchmarks, Runner.systems);
   `compile --list` and `bench --list` print them.  Every work
   subcommand takes --trace FILE (Chrome trace-event JSON of compiler
   passes and per-chip simulator activity) and --metrics (plain-text
   span/counter/stall report).

   Examples:
     cinnamon compile bootstrap-13 --chips 4
     cinnamon simulate bootstrap-13 --chips 8 --link-gbps 512 --trace /tmp/t.json
     cinnamon bench bert --system cinnamon-12 --metrics
     cinnamon bench bert --system cinnamon-12 --jobs 4 --cache-dir _cinnamon_cache
     cinnamon arch *)

open Cmdliner
open Cinnamon_workloads
module SC = Cinnamon_sim.Sim_config
module Sim = Cinnamon_sim.Simulator
module CC = Cinnamon_compiler.Compile_config
module T = Cinnamon_util.Table
module Tel = Cinnamon_telemetry.Telemetry

(* Registry names stay plain strings at the cmdliner layer and resolve
   inside the guarded command body, so an unknown name exits with the
   typed unknown-name code (3) and the uniform "error:" prefix rather
   than cmdliner's generic CLI-error code. *)
let kernel_arg = Arg.(value & pos 0 (some string) None & info [] ~docv:"KERNEL")

let ok_or_unknown = function
  | Ok v -> v
  | Error msg -> Cinnamon_util.Error.fail Cinnamon_util.Error.Unknown_name msg

let chips_arg = Arg.(value & opt int 4 & info [ "chips" ] ~docv:"N" ~doc:"Number of chips.")

let link_arg =
  Arg.(value & opt float 256.0 & info [ "link-gbps" ] ~docv:"GB/S" ~doc:"Per-PHY link bandwidth.")

let verbose_arg = Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print instruction histograms.")

let verify_arg =
  Arg.(
    value & flag
    & info [ "verify" ]
        ~doc:
          "Run the multi-stage static verifier over the compiled artifacts (ciphertext IR, \
           polynomial IR, limb IR, per-chip ISA).  Prints $(b,verify: ok) and the check \
           cost on success; prints every violation and exits with code 5 on failure.")

let list_arg = Arg.(value & flag & info [ "list" ] ~doc:"List the registry entries and exit.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace-event JSON file (open in chrome://tracing or Perfetto). \
           Compiler passes appear on pid 0 in wall time; simulator activity on pid 1+chip \
           with one cycle rendered as one microsecond.")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:"Print a telemetry report: pass timings, counters, and per-chip stall causes.")

(* Enable the telemetry sink for the duration of [f] when --trace or
   --metrics asked for it, then export. *)
let with_telemetry ~trace ~metrics f =
  if trace <> None || metrics then Tel.enable ();
  let code = f () in
  let code =
    match trace with
    | Some file -> (
      try
        Tel.write_chrome_trace file;
        Printf.printf "trace: wrote %d events to %s\n" (Tel.event_count ()) file;
        code
      with Sys_error msg ->
        Printf.eprintf "error: cannot write trace file: %s\n" msg;
        max code 1)
    | None -> code
  in
  if metrics then begin
    print_newline ();
    print_string (Tel.report ())
  end;
  code

let print_stall_table (res : Sim.result) =
  let t =
    T.create ~title:"Per-chip cycle accounting"
      ~header:[ "Chip"; "Busy"; "Operand"; "FU busy"; "HBM"; "Network"; "Idle"; "Total" ]
      ~aligns:(T.Left :: List.init 7 (fun _ -> T.Right))
      ()
  in
  Array.iteri
    (fun i (cs : Sim.chip_stats) ->
      T.add_row t
        [ string_of_int i; string_of_int cs.Sim.cs_busy; string_of_int cs.Sim.cs_stall_operand;
          string_of_int cs.Sim.cs_stall_fu; string_of_int cs.Sim.cs_stall_hbm;
          string_of_int cs.Sim.cs_stall_network; string_of_int cs.Sim.cs_idle;
          string_of_int cs.Sim.cs_total ])
    res.Sim.per_chip_stats;
  T.print t

let print_kernel_registry () =
  Printf.printf "kernels:\n";
  List.iter (fun (name, _) -> Printf.printf "  %s\n" name) Specs.kernels;
  Printf.printf "  matvec-<n>\n"

let print_bench_registry () =
  Printf.printf "benchmarks:\n";
  List.iter (fun (name, _) -> Printf.printf "  %s\n" name) Specs.benchmarks;
  Printf.printf "systems:\n";
  List.iter (fun (name, _) -> Printf.printf "  %s\n" name) Runner.systems

let missing_positional what =
  Printf.eprintf "error: missing %s argument (use --list to see the registry)\n" what;
  Cinnamon_util.Error.exit_code Cinnamon_util.Error.Invalid_input

(* Typed-diagnostic boundary: every subcommand body runs under this, so
   a [Cinnamon_util.Error] surfaces as "error: <kind>: <message>" and a
   kind-specific exit code (invalid-input 2, unknown-name 3, capacity 4,
   verification 5, internal 70) instead of a backtrace. *)
let guarded f =
  try f () with
  | Cinnamon_util.Error.Error e ->
    Printf.eprintf "error: %s\n" (Cinnamon_util.Error.to_string e);
    Cinnamon_util.Error.exit_code e.Cinnamon_util.Error.kind
  | Invalid_argument msg ->
    Printf.eprintf "error: %s\n" msg;
    Cinnamon_util.Error.exit_code Cinnamon_util.Error.Invalid_input

let config_of ~chips ~link =
  let topology = if chips > 8 then SC.Switch else SC.Ring in
  SC.with_link_gbps { (SC.cinnamon_chip ~chips ~topology) with SC.name = Printf.sprintf "Cinnamon-%d" chips } link

let do_compile_kernel kernel chips verify verbose =
  let prog = Specs.kernel_program kernel in
  let cfg = CC.paper ~chips () in
  let t0 = Sys.time () in
  let r = Cinnamon_compiler.Pipeline.compile cfg prog in
  let compile_s = Sys.time () -. t0 in
  Printf.printf "%s\n" (Cinnamon_compiler.Pipeline.summary r);
  let verify_failed =
    verify
    &&
    let t1 = Sys.time () in
    match Cinnamon_compiler.Pipeline.verify r with
    | [] ->
      let verify_s = Sys.time () -. t1 in
      Printf.printf "verify: ok (%d rules over 4 stages, %.3fs = %.1f%% of compile)\n"
        (List.length Cinnamon_compiler.Verify.rules)
        verify_s
        (100.0 *. verify_s /. Float.max compile_s 1e-9);
      false
    | vs ->
      List.iter
        (fun v -> Format.eprintf "error: verify: %a@." Cinnamon_compiler.Verify.pp_violation v)
        vs;
      Printf.eprintf "error: verification: %d violation(s)\n" (List.length vs);
      true
  in
  if verify_failed then Cinnamon_util.Error.exit_code Cinnamon_util.Error.Verification
  else begin
  let est = Cinnamon_compiler.Noise.analyze prog in
  Format.printf "static noise: %a%s@." Cinnamon_compiler.Noise.pp est
    (if Cinnamon_compiler.Noise.validate est then " (valid)" else " (NOISE BUDGET EXCEEDED)");
  let rep = r.Cinnamon_compiler.Pipeline.ks_report in
  Printf.printf
    "keyswitch pass: pattern-A %d groups (%d sites), pattern-B %d groups (%d sites), lone %d, total %d\n"
    rep.Cinnamon_compiler.Keyswitch_pass.pattern_a_groups
    rep.Cinnamon_compiler.Keyswitch_pass.pattern_a_sites
    rep.Cinnamon_compiler.Keyswitch_pass.pattern_b_groups
    rep.Cinnamon_compiler.Keyswitch_pass.pattern_b_sites
    rep.Cinnamon_compiler.Keyswitch_pass.unbatched_sites
    rep.Cinnamon_compiler.Keyswitch_pass.total_sites;
  Array.iteri
    (fun i stats ->
      Printf.printf "chip %d regalloc: %d spills, %d reloads, peak %d live\n" i
        stats.Cinnamon_compiler.Regalloc.spills stats.Cinnamon_compiler.Regalloc.reloads
        stats.Cinnamon_compiler.Regalloc.peak_live)
    r.Cinnamon_compiler.Pipeline.regalloc;
  let check = Cinnamon_emulator.Check.check r.Cinnamon_compiler.Pipeline.machine in
  Format.printf "structural check: %a@." Cinnamon_emulator.Check.pp_report check;
  if verbose then
    Array.iter
      (fun p ->
        Printf.printf "chip %d histogram:\n" p.Cinnamon_isa.Isa.chip;
        List.iter (fun (m, c) -> Printf.printf "  %-8s %8d\n" m c) (Cinnamon_isa.Isa.histogram p);
        Printf.printf "chip %d first instructions:\n" p.Cinnamon_isa.Isa.chip;
        Array.iteri
          (fun i ins ->
            if i < 24 then Format.printf "  %4d: %a@." i Cinnamon_isa.Isa.pp_instr ins)
          p.Cinnamon_isa.Isa.instrs)
      r.Cinnamon_compiler.Pipeline.machine.Cinnamon_isa.Isa.programs;
    0
  end

let do_compile kernel chips verify verbose list trace metrics =
  if list then begin
    print_kernel_registry ();
    0
  end
  else
    match kernel with
    | None -> missing_positional "KERNEL"
    | Some name ->
      with_telemetry ~trace ~metrics @@ fun () ->
      guarded @@ fun () ->
      do_compile_kernel (ok_or_unknown (Specs.find_kernel name)) chips verify verbose

let do_simulate kernel chips link list trace metrics =
  if list then begin
    print_kernel_registry ();
    0
  end
  else
    match kernel with
    | None -> missing_positional "KERNEL"
    | Some name ->
      with_telemetry ~trace ~metrics @@ fun () ->
      guarded @@ fun () ->
      let kernel = ok_or_unknown (Specs.find_kernel name) in
      let prog = Specs.kernel_program kernel in
      let cfg = CC.paper ~chips () in
      let r = Cinnamon_compiler.Pipeline.compile cfg prog in
      let sc = config_of ~chips ~link in
      let res = Sim.run sc r.Cinnamon_compiler.Pipeline.machine in
      Printf.printf "%s on %s (%g GB/s links): %s\n" (Specs.kernel_name kernel) sc.SC.name link
        (T.fmt_time res.Sim.seconds);
      Printf.printf "utilization: compute %.0f%%, memory %.0f%%, network %.0f%%\n"
        (100.0 *. res.Sim.util.Sim.compute) (100.0 *. res.Sim.util.Sim.memory)
        (100.0 *. res.Sim.util.Sim.network);
      if metrics then print_stall_table res;
      0

let bench_arg = Arg.(value & pos 0 (some string) None & info [] ~docv:"BENCHMARK")
let system_arg = Arg.(value & opt string "cinnamon-4" & info [ "system" ] ~docv:"SYS")

(* --jobs must be a positive worker count when given; omitting the
   flag means Domain.recommended_domain_count.  0 and negatives are
   rejected here with a cmdliner error instead of reaching
   Pool.create. *)
let jobs_conv =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 1 -> Ok n
    | Some n -> Error (`Msg (Printf.sprintf "JOBS must be >= 1, got %d" n))
    | None -> Error (`Msg (Printf.sprintf "JOBS must be an integer >= 1, got %s" s))
  in
  Arg.conv (parse, Format.pp_print_int)

let jobs_arg =
  Arg.(
    value
    & opt (some jobs_conv) None
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Worker domains for kernel compilation+simulation (>= 1; omit for \
           Domain.recommended_domain_count, 1 = sequential).  Results are identical for \
           every value.")

(* None (flag omitted) -> 0, the library-level recommended-count sentinel. *)
let resolve_jobs = function None -> 0 | Some n -> n

let cache_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:
          "Persist simulation results as JSON under $(docv) (conventionally \
           _cinnamon_cache/); later runs with the same configurations skip re-simulation.")

let do_bench bench system verify jobs cache_dir list trace metrics =
  if list then begin
    print_bench_registry ();
    0
  end
  else
    match bench with
    | None -> missing_positional "BENCHMARK"
    | Some bench_name ->
      with_telemetry ~trace ~metrics @@ fun () ->
      guarded @@ fun () ->
      Cinnamon_exec.Result_cache.set_dir cache_dir;
      let bench = ok_or_unknown (Specs.find_benchmark bench_name) in
      let system = ok_or_unknown (Runner.find_system system) in
      let r =
        List.hd (Runner.run_benchmarks ~jobs:(resolve_jobs jobs) ~verify [ (system, bench) ])
      in
      if verify then
        (* a violation would have raised out of the compile; reaching
           here means every freshly compiled segment checked out *)
        Printf.printf "verify: ok (all fresh segment compiles verified)\n";
      Printf.printf "%s on %s: %s\n" r.Runner.br_bench r.Runner.br_system
        (T.fmt_time r.Runner.br_seconds);
      List.iter
        (fun s -> Printf.printf "  %-14s %s\n" s.Runner.seg_kernel (T.fmt_time s.Runner.seg_seconds))
        r.Runner.br_segments;
      (match List.assoc_opt r.Runner.br_system bench.Specs.paper_times with
      | Some p -> Printf.printf "paper-reported: %s\n" (T.fmt_time p)
      | None -> ());
      0

(* serve-sim: play a generated request stream through the virtual-time
   serving layer (lib/serve) and report SLO metrics. *)
module Loadgen = Cinnamon_serve.Loadgen
module Node = Cinnamon_serve.Node

let quick_arg =
  Arg.(
    value & flag
    & info [ "quick" ]
        ~doc:"Use the quick preset (80 bootstrap requests, finishes in seconds); otherwise \
              the default preset (300 requests, bootstrap/resnet mix).")

let mode_arg =
  Arg.(
    value
    & opt (some (enum [ ("open", `Open); ("closed", `Closed) ])) None
    & info [ "mode" ] ~docv:"MODE"
        ~doc:"Client model: $(b,open) = Poisson open loop, $(b,closed) = fixed client pool \
              with think time.  Defaults to the preset's mode (open).")

let requests_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "requests" ] ~docv:"N" ~doc:"Total requests to issue (default: preset).")

let overload_arg =
  Arg.(
    value & opt float 4.0
    & info [ "overload" ] ~docv:"X"
        ~doc:"Open loop: offered load as a multiple of server capacity (> 1 provokes \
              queueing and shedding).")

let clients_arg =
  Arg.(value & opt int 8 & info [ "clients" ] ~docv:"N" ~doc:"Closed loop: concurrent clients.")

let think_arg =
  Arg.(
    value & opt float 0.5
    & info [ "think-factor" ] ~docv:"X"
        ~doc:"Closed loop: think time as a multiple of the mean service time.")

let seed_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "seed" ] ~docv:"SEED" ~doc:"Load-generator random seed (default: preset).")

let deadline_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline-factor" ] ~docv:"X"
        ~doc:"Deadline = arrival + $(docv) x the class's calibrated service time (default: \
              preset).")

let workers_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "workers" ] ~docv:"N" ~doc:"Simulated parallel executors (default: preset).")

let capacity_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "queue-capacity" ] ~docv:"N" ~doc:"Admission queue bound (default: preset).")

let max_batch_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-batch" ] ~docv:"N"
        ~doc:"Upper bound on dynamic batch size; each batch is also capped by the ring's \
              CKKS slot count (default: preset).")

let bench_json_arg =
  Arg.(
    value & opt string "BENCH_cinnamon.json"
    & info [ "bench-json" ] ~docv:"FILE"
        ~doc:"Merge the run's $(b,serve_loadtest) section into this perf-trajectory \
              artifact, preserving its other sections.")

let do_serve_sim quick mode requests overload clients think seed deadline workers capacity
    max_batch jobs cache_dir bench_json trace metrics =
  with_telemetry ~trace ~metrics @@ fun () ->
  Cinnamon_exec.Result_cache.set_dir cache_dir;
  let base = if quick then Loadgen.quick else Loadgen.default in
  let lg_mode =
    match mode with
    | None -> base.Loadgen.lg_mode
    | Some `Open -> Loadgen.Open_loop { overload }
    | Some `Closed -> Loadgen.Closed_loop { clients; think_factor = think }
  in
  let opt v dflt = Option.value v ~default:dflt in
  let node_capacity =
    {
      base.Loadgen.lg_capacity with
      Node.workers = opt workers base.Loadgen.lg_capacity.Node.workers;
      queue_capacity = opt capacity base.Loadgen.lg_capacity.Node.queue_capacity;
      max_batch = opt max_batch base.Loadgen.lg_capacity.Node.max_batch;
    }
  in
  let cfg =
    {
      base with
      Loadgen.lg_mode;
      lg_requests = opt requests base.Loadgen.lg_requests;
      lg_seed = opt seed base.Loadgen.lg_seed;
      lg_deadline_factor = opt deadline base.Loadgen.lg_deadline_factor;
      lg_capacity = node_capacity;
      lg_jobs = resolve_jobs jobs;
    }
  in
  guarded @@ fun () ->
  let r = Loadgen.run cfg in
  Loadgen.print_result r;
  Loadgen.write_section ~file:bench_json r;
  Printf.printf "serve_loadtest: merged %s section into %s\n" r.Loadgen.lr_mode bench_json;
  0

(* serve-fleet: sweep fleet sizes under Poisson/diurnal traces for each
   routing policy (lib/fleet) and merge the scaling-efficiency curves
   into the perf artifact. *)
module Fleet_bench = Cinnamon_fleet.Fleet_bench
module Tenant_bench = Cinnamon_fleet.Tenant_bench
module Router = Cinnamon_fleet.Router

let fleet_quick_arg =
  Arg.(
    value & flag
    & info [ "quick" ]
        ~doc:"Use the quick preset (600 requests, fleets of 1/2/4 nodes) instead of the \
              full sweep (million-request traces over 1..64 nodes).")

let nodes_arg =
  Arg.(
    value
    & opt (some (list int)) None
    & info [ "nodes" ] ~docv:"N,N,.."
        ~doc:"Fleet sizes to sweep, comma-separated ascending (default: preset).")

let policy_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "policy" ] ~docv:"POLICY"
        ~doc:"Routing policy: $(b,round_robin), $(b,least_loaded), $(b,locality) or \
              $(b,all) (default: all).")

let trace_shape_arg =
  Arg.(
    value
    & opt (some (enum [ ("poisson", `Poisson); ("diurnal", `Diurnal); ("both", `Both) ])) None
    & info [ "trace-shape" ] ~docv:"SHAPE"
        ~doc:"Arrival trace: $(b,poisson), $(b,diurnal) or $(b,both) (default: both).")

let fleet_overload_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "overload" ] ~docv:"X"
        ~doc:"Offered load as a multiple of aggregate fleet capacity (default: preset).")

let key_slots_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "key-slots" ] ~docv:"N"
        ~doc:"Per-node warm-key cache capacity, in resident key sets (default: preset).")

let key_load_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "key-load-factor" ] ~docv:"X"
        ~doc:"Modeled HBM key-load penalty on a cold dispatch, as a multiple of the mean \
              service time (default: preset).")

let no_autoscale_arg =
  Arg.(value & flag & info [ "no-autoscale" ] ~doc:"Skip the autoscaler demo runs.")

let tenants_arg =
  Arg.(
    value
    & opt ~vopt:(Some 64) (some int) None
    & info [ "tenants" ] ~docv:"N"
        ~doc:"Run the multi-tenant serving benchmark instead of the size sweep: $(docv) \
              tenants (default 64) behind a zipf popularity curve, per-tenant key epochs \
              rotating mid-trace, residency-aware routing and a transciphering ingress. \
              Merges the $(b,tenant_serving) section into the perf artifact.")

let tenant_skew_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "tenant-skew" ] ~docv:"S"
        ~doc:"Zipf exponent of the tenant popularity curve (default: preset; 0 = uniform).")

let do_serve_tenants quick tenants nodes requests overload seed deadline key_load skew jobs
    bench_json =
  let base = if quick then Tenant_bench.quick else Tenant_bench.full in
  let opt v dflt = Option.value v ~default:dflt in
  let cfg =
    {
      base with
      Tenant_bench.tb_tenants = tenants;
      tb_nodes =
        (match nodes with
        | Some ns -> List.fold_left max 1 ns
        | None -> base.Tenant_bench.tb_nodes);
      tb_requests = opt requests base.Tenant_bench.tb_requests;
      tb_seed = opt seed base.Tenant_bench.tb_seed;
      tb_overload = opt overload base.Tenant_bench.tb_overload;
      tb_deadline_factor = opt deadline base.Tenant_bench.tb_deadline_factor;
      tb_key_load_factor = opt key_load base.Tenant_bench.tb_key_load_factor;
      tb_tenant_skew = opt skew base.Tenant_bench.tb_tenant_skew;
      tb_jobs = resolve_jobs jobs;
    }
  in
  let r = Tenant_bench.run cfg in
  Tenant_bench.print_result r;
  Tenant_bench.write_section ~file:bench_json r;
  Printf.printf "\ntenant_serving: merged section into %s\n" bench_json;
  0

let do_serve_fleet quick nodes policy trace_shape requests overload seed deadline key_slots
    key_load no_autoscale tenants tenant_skew jobs cache_dir bench_json trace metrics =
  with_telemetry ~trace ~metrics @@ fun () ->
  Cinnamon_exec.Result_cache.set_dir cache_dir;
  guarded @@ fun () ->
  match tenants with
  | Some n ->
    do_serve_tenants quick n nodes requests overload seed deadline key_load tenant_skew jobs
      bench_json
  | None ->
  let base = if quick then Fleet_bench.quick else Fleet_bench.full in
  let opt v dflt = Option.value v ~default:dflt in
  let policies =
    match policy with
    | None | Some "all" -> Router.all_policies
    | Some s -> (
      match Router.policy_of_string s with
      | Some p -> [ p ]
      | None ->
        Cinnamon_util.Error.fail Cinnamon_util.Error.Invalid_input
          (Printf.sprintf "unknown policy %S (want round_robin, least_loaded, locality or all)" s))
  in
  let shapes =
    match trace_shape with
    | None | Some `Both -> [ `Poisson; `Diurnal ]
    | Some `Poisson -> [ `Poisson ]
    | Some `Diurnal -> [ `Diurnal ]
  in
  let cfg =
    {
      base with
      Fleet_bench.fb_nodes = opt nodes base.Fleet_bench.fb_nodes;
      fb_policies = policies;
      fb_shapes = shapes;
      fb_requests = opt requests base.Fleet_bench.fb_requests;
      fb_seed = opt seed base.Fleet_bench.fb_seed;
      fb_overload = opt overload base.Fleet_bench.fb_overload;
      fb_deadline_factor = opt deadline base.Fleet_bench.fb_deadline_factor;
      fb_key_slots = opt key_slots base.Fleet_bench.fb_key_slots;
      fb_key_load_factor = opt key_load base.Fleet_bench.fb_key_load_factor;
      fb_autoscale = base.Fleet_bench.fb_autoscale && not no_autoscale;
      fb_jobs = resolve_jobs jobs;
    }
  in
  let r = Fleet_bench.run cfg in
  Fleet_bench.print_result r;
  Fleet_bench.write_section ~file:bench_json r;
  Printf.printf "\nserve_fleet: merged section into %s\n" bench_json;
  0

let do_arch () =
  let a = Lazy.force Cinnamon_arch.Area.cinnamon_chip in
  Printf.printf "Cinnamon chip: %.2f mm^2 (paper: 223.18)\n" a.Cinnamon_arch.Area.total_mm2;
  List.iter
    (fun (acc : Cinnamon_arch.Yield.accelerator) ->
      let r = Cinnamon_arch.Yield.row acc in
      Printf.printf "  %-12s %7.1f mm^2  yield %3.0f%%  %4d dies/wafer\n" r.Cinnamon_arch.Yield.r_name
        r.Cinnamon_arch.Yield.r_area
        (100.0 *. r.Cinnamon_arch.Yield.r_yield)
        r.Cinnamon_arch.Yield.r_dies_per_wafer)
    Cinnamon_arch.Yield.table3;
  0

let compile_cmd =
  Cmd.v (Cmd.info "compile" ~doc:"Compile a kernel through the Cinnamon pipeline")
    Term.(
      const do_compile $ kernel_arg $ chips_arg $ verify_arg $ verbose_arg $ list_arg $ trace_arg
      $ metrics_arg)

let simulate_cmd =
  Cmd.v (Cmd.info "simulate" ~doc:"Compile and cycle-simulate a kernel")
    Term.(const do_simulate $ kernel_arg $ chips_arg $ link_arg $ list_arg $ trace_arg $ metrics_arg)

let bench_cmd =
  Cmd.v (Cmd.info "bench" ~doc:"Run a paper benchmark on a system")
    Term.(
      const do_bench $ bench_arg $ system_arg $ verify_arg $ jobs_arg $ cache_dir_arg $ list_arg
      $ trace_arg $ metrics_arg)

let serve_sim_cmd =
  Cmd.v
    (Cmd.info "serve-sim"
       ~doc:
         "Simulate an encrypted-inference serving deployment: generate a request stream \
          (Poisson open loop or closed loop), play it through the admission queue, dynamic \
          batcher and virtual-time scheduler, and report latency percentiles, goodput and \
          shed rate.")
    Term.(
      const do_serve_sim $ quick_arg $ mode_arg $ requests_arg $ overload_arg $ clients_arg
      $ think_arg $ seed_arg $ deadline_arg $ workers_arg $ capacity_arg $ max_batch_arg
      $ jobs_arg $ cache_dir_arg $ bench_json_arg $ trace_arg $ metrics_arg)

let serve_fleet_cmd =
  Cmd.v
    (Cmd.info "serve-fleet"
       ~doc:
         "Simulate a multi-node serving fleet: sweep fleet sizes under Poisson and diurnal \
          request traces for each routing policy (round-robin, least-loaded, \
          locality-aware), demo the SLO-driven autoscaler, and merge per-policy \
          scaling-efficiency curves into the perf artifact.")
    Term.(
      const do_serve_fleet $ fleet_quick_arg $ nodes_arg $ policy_arg $ trace_shape_arg
      $ requests_arg $ fleet_overload_arg $ seed_arg $ deadline_arg $ key_slots_arg $ key_load_arg
      $ no_autoscale_arg $ tenants_arg $ tenant_skew_arg $ jobs_arg $ cache_dir_arg
      $ bench_json_arg $ trace_arg $ metrics_arg)

let arch_cmd =
  Cmd.v (Cmd.info "arch" ~doc:"Print area and yield models") Term.(const do_arch $ const ())

let () =
  let info = Cmd.info "cinnamon" ~version:"1.0.0" ~doc:"Scale-out encrypted AI toolchain" in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ compile_cmd; simulate_cmd; bench_cmd; serve_sim_cmd; serve_fleet_cmd; arch_cmd ]))
